package nand

import (
	"math"
)

// ECCCapabilityRBER is the correction capability of the 4-KiB QC-LDPC
// engine assumed throughout the paper: pages whose RBER exceeds this
// cannot be decoded and require a read-retry (Fig. 3).
const ECCCapabilityRBER = 0.0085

// VrefMode selects which read-reference voltages a sense operation
// uses, which determines the observed RBER.
type VrefMode int

const (
	// DefaultVref uses the factory voltages; retention-induced Vth
	// drift is fully exposed.
	DefaultVref VrefMode = iota
	// OptimalVref uses per-threshold near-optimal voltages (the result
	// of a successful Swift-Read estimate or an ideal retry).
	OptimalVref
	// TrackedVref models SWR+'s proactive VREF tracking: the voltages
	// lag the true optimum, removing a large fraction of the drift.
	TrackedVref
)

// ModelParams are the tunable constants of the Vth physics model.
// DefaultModelParams is calibrated so the ECC-capability crossing
// reproduces the paper's Fig. 4 retention frontier.
type ModelParams struct {
	// StateGap is the fresh spacing between adjacent Vth state means
	// (arbitrary millivolt-like units).
	StateGap float64
	// SigmaFresh is the fresh per-state Vth standard deviation.
	SigmaFresh float64
	// RetentionShift scales the charge-loss downshift of programmed
	// states: state i shifts by
	// RetentionShift*(0.5+0.5*i/7)*log(1+days)*wear — every programmed
	// state loses charge, higher states faster.
	RetentionShift float64
	// RetentionWiden scales distribution widening with retention.
	RetentionWiden float64
	// PEWiden scales permanent widening with P/E cycling (per 1K P/E).
	PEWiden float64
	// PEShiftBoost scales how much P/E wear accelerates retention
	// loss (per 1K P/E). The same wear multiplier accelerates read
	// disturb (the pe^p factor of the MQSim-JW power-law RBER model).
	PEShiftBoost float64
	// DisturbShift scales the read-disturb upshift of the lower Vth
	// states: after N block reads the erase state rises by
	// DisturbShift * N^DisturbExp * wear model-voltage units, tapering
	// linearly to zero at the top state (the weak-programming stress
	// of repeated senses affects erased cells most).
	DisturbShift float64
	// DisturbWiden scales per-state distribution widening with the
	// same power-law disturb level.
	DisturbWiden float64
	// DisturbExp is the power-law exponent on the block's accumulated
	// read count (the reads^q term of the MQSim-JW model; q < 1, so
	// per-read damage saturates as the count grows).
	DisturbExp float64
	// BlockVarSigma is the lognormal sigma of per-block process
	// variation applied to the retention shift rate.
	BlockVarSigma float64
	// ChunkVar4K is the relative RBER std-dev among 4-KiB chunks of a
	// page; smaller chunks scale by sqrt(4K/size) (Fig. 12).
	ChunkVar4K float64
	// TrackedResidual is the fraction of VREF drift left uncorrected
	// in TrackedVref mode (SWR+).
	TrackedResidual float64
}

// DefaultModelParams returns the calibrated constants.
func DefaultModelParams() ModelParams {
	return ModelParams{
		StateGap:       600,
		SigmaFresh:     80,
		RetentionShift: 47,
		RetentionWiden: 0.055,
		PEWiden:        0.10,
		PEShiftBoost:   0.20,
		// Disturb coefficients are calibrated so the default-VREF RBER
		// increase tracks the pre-power-law linear model (2e-9 per
		// read) within ~1.5x over 10K..1M block reads at 1K P/E — the
		// small-reads limit — while staying a genuine distribution
		// change that VREF re-optimization only partially removes.
		DisturbShift:    8e-5,
		DisturbWiden:    1e-6,
		DisturbExp:      0.8,
		BlockVarSigma:   0.10,
		ChunkVar4K:      0.0085,
		TrackedResidual: 0.65,
	}
}

// Model evaluates page RBER as a function of operating condition. It
// is deterministic: all per-block and per-page variation derives from
// Seed, so repeated queries agree and experiments are reproducible.
type Model struct {
	p    ModelParams
	seed uint64
}

// NewModel builds a reliability model with the given parameters.
func NewModel(p ModelParams, seed uint64) *Model {
	return &Model{p: p, seed: seed}
}

// NewDefaultModel builds a model with DefaultModelParams.
func NewDefaultModel(seed uint64) *Model {
	return NewModel(DefaultModelParams(), seed)
}

// Params returns the model constants.
func (m *Model) Params() ModelParams { return m.p }

// thresholdsOf lists the VREF indices (1..7) a page type needs.
func thresholdsOf(pt PageType) []int {
	switch pt {
	case LSB:
		return []int{1, 5}
	case CSB:
		return []int{2, 4, 6}
	default:
		return []int{3, 7}
	}
}

// qFunc is the Gaussian upper-tail probability Q(x).
func qFunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// hash01 maps a key to a deterministic uniform (0,1) value.
func hash01(key uint64) float64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return (float64(z>>11) + 0.5) / (1 << 53)
}

// hashNormal maps a key to a deterministic standard-normal value via
// the inverse-CDF of a pair of uniforms (Box-Muller on fixed draws).
func hashNormal(key uint64) float64 {
	u1 := hash01(key)
	u2 := hash01(key ^ 0xabcdef1234567890)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// BlockVariation reports the process-variation multiplier on the
// retention shift rate for a block. It is lognormal around 1.
func (m *Model) BlockVariation(blockID int) float64 {
	return math.Exp(m.p.BlockVarSigma * hashNormal(m.seed^uint64(blockID)*0x9e3779b9))
}

// condition captures the derived distribution state for one read.
type condition struct {
	shiftUnit   float64 // retention downshift of the top state (state 7)
	disturbUnit float64 // read-disturb upshift of the erase state (state 0)
	sigma       float64 // common per-state std-dev after widening/wear
}

// conditionAt derives the Vth distribution state of one block read.
// Retention shifts the programmed states down and widens them; read
// disturb — a genuine distribution change, not an additive RBER tax —
// pushes the low states up and widens everything, both growing as a
// power law of the block's accumulated read count (the reads^q term of
// the MQSim-JW RBER model) and accelerated by the same wear multiplier
// that speeds retention loss. Because disturb reshapes the
// distributions, it interacts with VREF choice: a re-optimized read
// voltage recenters on the shifted means but cannot undo the widening
// or the shrunken state gaps, so disturb degrades every VREF mode by a
// different amount.
func (m *Model) conditionAt(blockID, pe int, retentionDays float64, reads int64) condition {
	if retentionDays < 0 {
		retentionDays = 0
	}
	wear := 1 + m.p.PEShiftBoost*float64(pe)/1000
	l := math.Log1p(retentionDays) * wear * m.BlockVariation(blockID)
	c := condition{
		shiftUnit: m.p.RetentionShift * l,
		sigma:     m.p.SigmaFresh * (1 + m.p.RetentionWiden*l + m.p.PEWiden*float64(pe)/1000),
	}
	if reads > 0 {
		dl := math.Pow(float64(reads), m.p.DisturbExp) * wear
		c.disturbUnit = m.p.DisturbShift * dl
		c.sigma *= 1 + m.p.DisturbWiden*dl
	}
	return c
}

// stateMean reports the mean of state i under the condition. All
// programmed states lose charge with retention; higher states lose it
// faster (steeper field across the damaged tunnel oxide), so the
// shift grows from half the unit at the erase state to the full unit
// at the top state. Read disturb works the other way: pass-voltage
// stress weakly programs cells, raising the erase state by the full
// disturb unit and tapering to nothing at the top state — the state
// gaps shrink from both ends.
func (m *Model) stateMean(i int, c condition) float64 {
	return float64(i)*m.p.StateGap - c.shiftUnit*(0.5+0.5*float64(i)/7) + c.disturbUnit*(1-float64(i)/7)
}

// defaultVref is the factory read voltage for threshold j (between
// states j-1 and j of the fresh distributions).
func (m *Model) defaultVref(j int) float64 {
	return (float64(j-1) + 0.5) * m.p.StateGap
}

// optimalVref is the equal-density crossing of the two adjacent
// (shifted) distributions — what Swift-Read estimates.
func (m *Model) optimalVref(j int, c condition) float64 {
	return (m.stateMean(j-1, c) + m.stateMean(j, c)) / 2
}

// trackedVref lags the optimum by TrackedResidual of the drift.
func (m *Model) trackedVref(j int, c condition) float64 {
	opt := m.optimalVref(j, c)
	def := m.defaultVref(j)
	return opt + m.p.TrackedResidual*(def-opt)
}

// vrefAt reports the read voltage for threshold j in the given mode
// under the condition.
func (m *Model) vrefAt(j int, mode VrefMode, c condition) float64 {
	switch mode {
	case OptimalVref:
		return m.optimalVref(j, c)
	case TrackedVref:
		return m.trackedVref(j, c)
	default:
		return m.defaultVref(j)
	}
}

// rberAcross sums the misread probability across the page type's
// thresholds, sensing threshold j at voltage vref(j). It is the one
// place the per-threshold tail formula lives: every RBER query —
// PageRBER, the retry-table walk, the Swift-Read re-read — routes
// through it. A cell is in a specific state with probability 1/8
// (randomized data); misreads across threshold j come from the two
// adjacent states.
func (m *Model) rberAcross(pt PageType, c condition, vref func(j int) float64) float64 {
	rber := 0.0
	for _, j := range thresholdsOf(pt) {
		v := vref(j)
		lo := m.stateMean(j-1, c)
		hi := m.stateMean(j, c)
		rber += (qFunc((v-lo)/c.sigma) + qFunc((hi-v)/c.sigma)) / 8
	}
	if rber > 0.5 {
		rber = 0.5
	}
	return rber
}

// PageRBER reports the raw bit error rate observed when sensing the
// page with the given VREF mode under the given operating condition.
func (m *Model) PageRBER(blockID int, pt PageType, pe int, retentionDays float64, reads int64, mode VrefMode) float64 {
	c := m.conditionAt(blockID, pe, retentionDays, reads)
	return m.rberAcross(pt, c, func(j int) float64 { return m.vrefAt(j, mode, c) })
}

// ChunkRBER reports the RBER of chunk chunkIdx (of chunkCount equal
// chunks) of a page whose overall RBER is pageRBER. Intra-page
// variation is small, grows as chunks shrink, and grows with stress
// (Fig. 12 shows the spread widening with retention and P/E); pageKey
// makes the jitter deterministic per page.
func (m *Model) ChunkRBER(pageRBER float64, pageKey uint64, chunkIdx, chunkCount int) float64 {
	if chunkCount <= 1 {
		return pageRBER
	}
	// ChunkVar4K is specified for 4 chunks of a 16-KiB page under
	// full stress; smaller chunks have proportionally noisier RBER,
	// and lightly-stressed pages (low RBER) vary less.
	stress := pageRBER / ECCCapabilityRBER
	if stress > 1 {
		stress = 1
	}
	sigma := m.p.ChunkVar4K * math.Pow(float64(chunkCount)/4, 0.75) * (0.55 + 0.45*stress)
	eps := sigma * hashNormal(m.seed^pageKey^uint64(chunkIdx)*0x517cc1b727220a95^uint64(chunkCount)<<32)
	r := pageRBER * (1 + eps)
	if r < 0 {
		r = 0
	}
	return r
}

// NeedsRetry reports whether a page read at the given condition and
// VREF mode exceeds the ECC correction capability.
func (m *Model) NeedsRetry(blockID int, pt PageType, pe int, retentionDays float64, reads int64, mode VrefMode) bool {
	return m.PageRBER(blockID, pt, pe, retentionDays, reads, mode) > ECCCapabilityRBER
}

// RetentionUntilRetry reports the retention time, in days, at which
// the page's default-VREF RBER first exceeds the ECC correction
// capability (the quantity characterized in Fig. 4). It returns
// maxDays when the page survives the whole horizon.
func (m *Model) RetentionUntilRetry(blockID int, pt PageType, pe int, maxDays float64) float64 {
	if m.PageRBER(blockID, pt, pe, 0, 0, DefaultVref) > ECCCapabilityRBER {
		return 0
	}
	if m.PageRBER(blockID, pt, pe, maxDays, 0, DefaultVref) <= ECCCapabilityRBER {
		return maxDays
	}
	lo, hi := 0.0, maxDays
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if m.PageRBER(blockID, pt, pe, mid, 0, DefaultVref) > ECCCapabilityRBER {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
