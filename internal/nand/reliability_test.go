package nand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRBERMonotonicInRetention(t *testing.T) {
	m := NewDefaultModel(1)
	for _, pt := range []PageType{LSB, CSB, MSB} {
		prev := -1.0
		for d := 0.0; d <= 31; d += 1 {
			r := m.PageRBER(0, pt, 1000, d, 0, DefaultVref)
			if r < prev {
				t.Fatalf("%v: RBER decreased with retention at day %v", pt, d)
			}
			prev = r
		}
	}
}

func TestRBERMonotonicInPE(t *testing.T) {
	m := NewDefaultModel(1)
	prev := -1.0
	for _, pe := range []int{0, 100, 200, 300, 500, 1000, 2000, 3000} {
		r := m.PageRBER(0, CSB, pe, 14, 0, DefaultVref)
		if r < prev {
			t.Fatalf("RBER decreased with P/E at %d", pe)
		}
		prev = r
	}
}

func TestFreshPagesDecodeEasily(t *testing.T) {
	m := NewDefaultModel(1)
	for _, pt := range []PageType{LSB, CSB, MSB} {
		r := m.PageRBER(0, pt, 0, 0, 0, DefaultVref)
		if r > ECCCapabilityRBER/10 {
			t.Fatalf("%v fresh RBER = %v, implausibly high", pt, r)
		}
	}
}

func TestFig4RetentionFrontier(t *testing.T) {
	// The paper's characterization: read retry becomes possible after
	// ~17 days at 0 P/E, ~14 at 200, ~10 at 500, ~8 at 1000 (earliest
	// onset over the tested population). Check the onset (fastest of
	// many blocks/page types) lands near those frontiers.
	m := NewDefaultModel(1)
	onset := func(pe int) float64 {
		min := math.Inf(1)
		for b := 0; b < 200; b++ {
			for _, pt := range []PageType{LSB, CSB, MSB} {
				if d := m.RetentionUntilRetry(b, pt, pe, 60); d < min {
					min = d
				}
			}
		}
		return min
	}
	checks := []struct {
		pe   int
		want float64 // paper's onset, days
	}{
		{0, 17}, {200, 14}, {500, 10}, {1000, 8},
	}
	var prev float64 = math.Inf(1)
	for _, c := range checks {
		got := onset(c.pe)
		if got > prev {
			t.Fatalf("onset not monotonic in P/E: %v days at %d P/E after %v", got, c.pe, prev)
		}
		prev = got
		// The shape must hold within a factor-of-two band.
		if got < c.want/2 || got > c.want*2 {
			t.Errorf("pe=%d: retry onset %.1f days, paper ~%v", c.pe, got, c.want)
		}
	}
}

func TestRetryNeededEvenAtZeroPE(t *testing.T) {
	// §III-A: "the read-retry procedure is required even in a fresh
	// wear-out condition" for month-scale retention.
	m := NewDefaultModel(1)
	retries := 0
	for b := 0; b < 100; b++ {
		if m.NeedsRetry(b, CSB, 0, 30, 0, DefaultVref) {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("no page needs retry at 0 P/E after 30 days; paper says most do")
	}
}

func TestOptimalVrefRescuesPages(t *testing.T) {
	// A page unreadable at the default VREF must be comfortably
	// decodable at the near-optimal VREF (the premise of every retry
	// scheme, and of tECC=1us after adjustment).
	m := NewDefaultModel(1)
	for _, pe := range []int{0, 1000, 2000} {
		for _, pt := range []PageType{LSB, CSB, MSB} {
			for d := 1.0; d <= 31; d += 3 {
				if !m.NeedsRetry(0, pt, pe, d, 0, DefaultVref) {
					continue
				}
				opt := m.PageRBER(0, pt, pe, d, 0, OptimalVref)
				if opt > ECCCapabilityRBER {
					t.Fatalf("pe=%d %v day=%v: optimal-VREF RBER %v still above capability", pe, pt, d, opt)
				}
			}
		}
	}
}

func TestVrefModeOrdering(t *testing.T) {
	// Optimal <= Tracked <= Default for any stressed condition.
	m := NewDefaultModel(1)
	f := func(peRaw uint8, dRaw uint8, blockRaw uint16) bool {
		pe := int(peRaw) * 12 // 0..3060
		d := float64(dRaw%32) + 1
		b := int(blockRaw)
		opt := m.PageRBER(b, CSB, pe, d, 0, OptimalVref)
		trk := m.PageRBER(b, CSB, pe, d, 0, TrackedVref)
		def := m.PageRBER(b, CSB, pe, d, 0, DefaultVref)
		return opt <= trk*(1+1e-9) && trk <= def*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrackedVrefReducesRetryFrequency(t *testing.T) {
	// SWR+'s tracking must push the retry onset to longer retention.
	m := NewDefaultModel(1)
	const pe = 2000
	defRetries, trkRetries := 0, 0
	for b := 0; b < 100; b++ {
		if m.NeedsRetry(b, CSB, pe, 10, 0, DefaultVref) {
			defRetries++
		}
		if m.NeedsRetry(b, CSB, pe, 10, 0, TrackedVref) {
			trkRetries++
		}
	}
	if trkRetries >= defRetries {
		t.Fatalf("tracking did not reduce retries: %d vs %d", trkRetries, defRetries)
	}
}

func TestBlockVariationIsDeterministicAndSpread(t *testing.T) {
	m := NewDefaultModel(7)
	m2 := NewDefaultModel(7)
	var lo, hi float64 = math.Inf(1), 0
	for b := 0; b < 1000; b++ {
		v := m.BlockVariation(b)
		if v != m2.BlockVariation(b) {
			t.Fatal("block variation not deterministic")
		}
		if v <= 0 {
			t.Fatal("non-positive variation")
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi/lo < 1.2 {
		t.Fatalf("variation spread too tight: [%v, %v]", lo, hi)
	}
	mOther := NewDefaultModel(8)
	if mOther.BlockVariation(3) == m.BlockVariation(3) {
		t.Fatal("different seeds produced identical variation")
	}
}

func TestChunkSimilarityFig12(t *testing.T) {
	// Fig. 12: (RBERmax-RBERmin)/RBERmin among chunks stays small —
	// up to ~4.5% for 4-KiB chunks and ~13.5% for 1-KiB chunks — and
	// grows as chunks shrink.
	m := NewDefaultModel(1)
	maxSpread := func(chunks int) float64 {
		worst := 0.0
		for page := uint64(0); page < 3000; page++ {
			base := 0.004
			lo, hi := math.Inf(1), 0.0
			for c := 0; c < chunks; c++ {
				r := m.ChunkRBER(base, page, c, chunks)
				lo = math.Min(lo, r)
				hi = math.Max(hi, r)
			}
			if s := (hi - lo) / lo; s > worst {
				worst = s
			}
		}
		return worst
	}
	s4 := maxSpread(4)   // 4-KiB chunks of a 16-KiB page
	s8 := maxSpread(8)   // 2-KiB
	s16 := maxSpread(16) // 1-KiB
	if !(s4 < s8 && s8 < s16) {
		t.Fatalf("spread not increasing as chunks shrink: %v %v %v", s4, s8, s16)
	}
	if s4 > 0.10 {
		t.Fatalf("4-KiB chunk spread %v too large (paper: <=4.5%%)", s4)
	}
	if s16 > 0.30 {
		t.Fatalf("1-KiB chunk spread %v too large (paper: <=13.5%%)", s16)
	}
}

func TestChunkRBERDeterministic(t *testing.T) {
	m := NewDefaultModel(1)
	a := m.ChunkRBER(0.005, 42, 2, 4)
	b := m.ChunkRBER(0.005, 42, 2, 4)
	if a != b {
		t.Fatal("chunk RBER not deterministic")
	}
	if m.ChunkRBER(0.005, 42, 2, 1) != 0.005 {
		t.Fatal("single chunk must equal page RBER")
	}
}

func TestRetentionUntilRetryBisection(t *testing.T) {
	m := NewDefaultModel(1)
	d := m.RetentionUntilRetry(0, MSB, 1000, 60)
	if d <= 0 || d >= 60 {
		t.Fatalf("crossing day = %v, expected interior", d)
	}
	// Just before: below capability; just after: above.
	if m.PageRBER(0, MSB, 1000, d-0.01, 0, DefaultVref) > ECCCapabilityRBER {
		t.Fatal("RBER above capability before the reported crossing")
	}
	if m.PageRBER(0, MSB, 1000, d+0.01, 0, DefaultVref) <= ECCCapabilityRBER {
		t.Fatal("RBER below capability after the reported crossing")
	}
}

func TestReadDisturbAccumulates(t *testing.T) {
	m := NewDefaultModel(1)
	r0 := m.PageRBER(0, CSB, 1000, 5, 0, DefaultVref)
	r1 := m.PageRBER(0, CSB, 1000, 5, 1_000_000, DefaultVref)
	if r1 <= r0 {
		t.Fatal("read disturb did not increase RBER")
	}
}

func TestRBERCappedAtHalf(t *testing.T) {
	m := NewDefaultModel(1)
	if r := m.PageRBER(0, CSB, 100000, 10000, 1<<40, DefaultVref); r > 0.5 {
		t.Fatalf("RBER = %v > 0.5", r)
	}
}
