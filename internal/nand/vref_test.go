package nand

import (
	"testing"
)

func TestRetrySequenceMovesDownward(t *testing.T) {
	seq := DefaultRetrySequence()
	if len(seq) == 0 {
		t.Fatal("empty retry sequence")
	}
	prev := RetryStep(0)
	for i, s := range seq {
		if s >= prev {
			t.Fatalf("step %d (%v) does not move further down than %v", i, s, prev)
		}
		prev = s
	}
}

func TestConventionalRetryWalksSequence(t *testing.T) {
	m := NewDefaultModel(1)
	// Fresh page: no retry needed.
	if steps, ok := m.ConventionalRetrySteps(0, CSB, 0, 0, 0); steps != 0 || !ok {
		t.Fatalf("fresh page: steps=%d ok=%v", steps, ok)
	}
	// Stressed page: needs at least one step, and the step count grows
	// with stress severity.
	s1, ok1 := m.ConventionalRetrySteps(0, CSB, 1000, 14, 0)
	if !ok1 || s1 < 1 {
		t.Fatalf("stressed page: steps=%d ok=%v", s1, ok1)
	}
	s2, ok2 := m.ConventionalRetrySteps(0, CSB, 2000, 28, 0)
	if !ok2 {
		t.Fatalf("heavily stressed page not recovered by the sequence")
	}
	if s2 < s1 {
		t.Fatalf("retry steps decreased with stress: %d then %d", s1, s2)
	}
}

func TestPageRBERAtOffsetImprovesStressedPage(t *testing.T) {
	m := NewDefaultModel(1)
	const pe, days = 1500, 20
	def := m.PageRBER(0, MSB, pe, days, 0, DefaultVref)
	best := def
	for _, off := range DefaultRetrySequence() {
		r := m.PageRBERAtOffset(0, MSB, pe, days, 0, float64(off))
		if r < best {
			best = r
		}
	}
	if best >= def {
		t.Fatal("no retry offset improved a retention-stressed page")
	}
}

func TestSenseAboveFractionMonotonic(t *testing.T) {
	m := NewDefaultModel(1)
	prev := 2.0
	for v := -500.0; v < 5000; v += 250 {
		f := m.SenseAboveFraction(0, 1000, 10, v)
		if f > prev {
			t.Fatalf("ones fraction increased with voltage at %v", v)
		}
		if f < 0 || f > 1 {
			t.Fatalf("fraction out of range: %v", f)
		}
		prev = f
	}
}

func TestSenseAboveFractionDriftSignal(t *testing.T) {
	// Retention drift moves charge out of the cells, so at a fixed
	// probe voltage the above-voltage fraction must fall — this is the
	// signal Swift-Read decodes.
	m := NewDefaultModel(1)
	probe := 6.5 * m.Params().StateGap
	fresh := m.SenseAboveFraction(0, 0, 0, probe)
	aged := m.SenseAboveFraction(0, 1000, 25, probe)
	if aged >= fresh {
		t.Fatalf("drift signal missing: fresh=%v aged=%v", fresh, aged)
	}
}

func TestSwiftReadEstimatesShiftAccurately(t *testing.T) {
	m := NewDefaultModel(1)
	for _, tc := range []struct {
		pe   int
		days float64
	}{
		{0, 20}, {500, 15}, {1000, 10}, {1000, 25}, {2000, 10}, {2000, 28},
	} {
		res := m.SwiftRead(0, MSB, tc.pe, tc.days)
		if res.TrueShift <= 0 {
			t.Fatalf("pe=%d d=%v: no true shift to estimate", tc.pe, tc.days)
		}
		err := res.EstimatedShift - res.TrueShift
		if err < 0 {
			err = -err
		}
		// Estimation error within a couple of DAC steps.
		if err > 25 {
			t.Fatalf("pe=%d d=%v: shift estimate %.1f vs true %.1f", tc.pe, tc.days, res.EstimatedShift, res.TrueShift)
		}
	}
}

func TestSwiftReadRescuesFailedPages(t *testing.T) {
	// §IV-C: after a Swift-Read the re-read page's RBER must be below
	// the ECC capability for every condition the paper evaluates.
	m := NewDefaultModel(1)
	for _, pe := range []int{0, 1000, 2000} {
		for _, pt := range []PageType{LSB, CSB, MSB} {
			for d := 1.0; d <= 31; d += 2 {
				if !m.NeedsRetry(0, pt, pe, d, 0, DefaultVref) {
					continue
				}
				res := m.SwiftRead(0, pt, pe, d)
				if res.RBER > ECCCapabilityRBER {
					t.Fatalf("pe=%d %v d=%v: Swift-Read RBER %v above capability", pe, pt, d, res.RBER)
				}
			}
		}
	}
}

func TestSwiftReadNearOptimal(t *testing.T) {
	// The Swift-Read result should be close to the true optimal-VREF
	// RBER (within a small factor from DAC quantization).
	m := NewDefaultModel(1)
	res := m.SwiftRead(0, MSB, 1000, 20)
	opt := m.PageRBER(0, MSB, 1000, 20, 0, OptimalVref)
	if res.RBER > opt*3+1e-6 {
		t.Fatalf("Swift-Read RBER %v much worse than optimal %v", res.RBER, opt)
	}
}
