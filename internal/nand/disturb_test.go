package nand

import "testing"

// The read-disturb regression suite: conditionAt used to ignore its
// reads parameter entirely, leaving disturb as a flat additive RBER
// term that every VREF mode saw identically. These tests pin the
// corrected behaviour — disturb reshapes the distributions, so its
// cost depends on where the read voltages sit.

// disturbAdded reports the RBER increase caused by `reads` block reads
// in the given mode.
func disturbAdded(m *Model, pt PageType, pe int, days float64, reads int64, mode VrefMode) float64 {
	return m.PageRBER(7, pt, pe, days, reads, mode) - m.PageRBER(7, pt, pe, days, 0, mode)
}

// TestDisturbDiffersAcrossVrefModes pins the tentpole fix: read
// disturb is no longer a mode-independent constant added after the
// per-threshold sum — a default-VREF read pays more for the same
// disturb than a re-optimized read, because recentring the voltages
// compensates part of the shift but none of the widening.
func TestDisturbDiffersAcrossVrefModes(t *testing.T) {
	m := NewDefaultModel(1)
	const reads = 200_000
	addDef := disturbAdded(m, CSB, 1000, 5, reads, DefaultVref)
	addOpt := disturbAdded(m, CSB, 1000, 5, reads, OptimalVref)
	addTrk := disturbAdded(m, CSB, 1000, 5, reads, TrackedVref)
	if addDef <= 0 || addOpt <= 0 || addTrk <= 0 {
		t.Fatalf("disturb must increase RBER in every mode: def=%+.3e opt=%+.3e trk=%+.3e", addDef, addOpt, addTrk)
	}
	if addDef < 1.5*addOpt {
		t.Errorf("disturb is mode-independent again: default-VREF added %.3e, optimal-VREF added %.3e (want def >= 1.5x opt)", addDef, addOpt)
	}
	if addTrk <= addOpt || addTrk >= addDef {
		t.Errorf("tracked-VREF disturb %.3e should sit between optimal %.3e and default %.3e", addTrk, addOpt, addDef)
	}
}

// TestDisturbShapesRetryTableReads is the PageRBERAtOffset half of the
// same pin: the retry-table walk shares the threshold formula with
// PageRBER (deduplicated through rberAcross), so its disturb cost also
// depends on where the table entry puts the voltages instead of being
// the same flat constant at every offset.
func TestDisturbShapesRetryTableReads(t *testing.T) {
	m := NewDefaultModel(1)
	const reads = 200_000
	added := func(offset float64) float64 {
		return m.PageRBERAtOffset(7, CSB, 1000, 20, reads, offset) -
			m.PageRBERAtOffset(7, CSB, 1000, 20, 0, offset)
	}
	a0 := added(0)
	aDeep := added(-130)
	if a0 <= 0 || aDeep <= 0 {
		t.Fatalf("disturb must increase retry-table RBER: offset 0 %+.3e, offset -130 %+.3e", a0, aDeep)
	}
	rel := a0 / aDeep
	if rel > 0.95 && rel < 1.05 {
		t.Errorf("retry-table disturb is offset-independent: added %.3e at offset 0 vs %.3e at -130", a0, aDeep)
	}
}

// TestDisturbSmallReadsCalibration anchors the power-law coefficients:
// in the small-reads regime the default-VREF increase must track the
// pre-fix linear model (2e-9 RBER per read) within a factor of two, so
// every paper-calibrated figure keeps its error budget.
func TestDisturbSmallReadsCalibration(t *testing.T) {
	m := NewDefaultModel(1)
	for _, reads := range []int64{50_000, 100_000, 200_000} {
		added := disturbAdded(m, CSB, 1000, 5, reads, DefaultVref)
		linear := 2e-9 * float64(reads)
		if added < linear/2 || added > 2*linear {
			t.Errorf("reads=%d: disturb added %.3e, linear model %.3e (want within 2x)", reads, added, linear)
		}
	}
}

// TestDisturbMonotoneInReads pins strict growth: more reads, more
// errors, in both VREF modes (the old model could even reduce
// default-VREF RBER when shift and retention drift cancelled).
func TestDisturbMonotoneInReads(t *testing.T) {
	m := NewDefaultModel(1)
	for _, mode := range []VrefMode{DefaultVref, OptimalVref, TrackedVref} {
		prev := m.PageRBER(3, MSB, 1500, 10, 0, mode)
		for _, reads := range []int64{10_000, 100_000, 1_000_000, 10_000_000} {
			r := m.PageRBER(3, MSB, 1500, 10, reads, mode)
			if r <= prev {
				t.Fatalf("mode %d: RBER not monotone in reads: %.3e at %d reads vs %.3e before", mode, r, reads, prev)
			}
			prev = r
		}
	}
}
