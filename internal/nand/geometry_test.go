package nand

import (
	"testing"
	"testing/quick"
)

func TestPaperGeometryMatchesTableI(t *testing.T) {
	g := PaperGeometry()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Channels != 8 || g.DiesPerChan != 4 || g.PlanesPerDie != 4 {
		t.Fatalf("wrong array shape: %+v", g)
	}
	if g.BlocksPerPlane != 1888 || g.PagesPerBlock != 576 || g.PageBytes != 16*1024 {
		t.Fatalf("wrong block shape: %+v", g)
	}
	// Table I: 2-TiB total capacity.
	wantTiB := float64(g.CapacityBytes()) / (1 << 40)
	if wantTiB < 1.9 || wantTiB > 2.1 {
		t.Fatalf("capacity = %.3f TiB, want ~2", wantTiB)
	}
}

func TestGeometryCounts(t *testing.T) {
	g := Geometry{Channels: 2, DiesPerChan: 3, PlanesPerDie: 4, BlocksPerPlane: 5, PagesPerBlock: 6, PageBytes: 7}
	if g.TotalDies() != 6 {
		t.Fatalf("TotalDies = %d", g.TotalDies())
	}
	if g.TotalBlocks() != 2*3*4*5 {
		t.Fatalf("TotalBlocks = %d", g.TotalBlocks())
	}
	if g.TotalPages() != 2*3*4*5*6 {
		t.Fatalf("TotalPages = %d", g.TotalPages())
	}
	if g.CapacityBytes() != int64(2*3*4*5*6*7) {
		t.Fatalf("CapacityBytes = %d", g.CapacityBytes())
	}
}

func TestGeometryValidateRejectsBadDims(t *testing.T) {
	good := PaperGeometry()
	mutations := []func(*Geometry){
		func(g *Geometry) { g.Channels = 0 },
		func(g *Geometry) { g.DiesPerChan = -1 },
		func(g *Geometry) { g.PlanesPerDie = 0 },
		func(g *Geometry) { g.BlocksPerPlane = 0 },
		func(g *Geometry) { g.PagesPerBlock = 0 },
		func(g *Geometry) { g.PageBytes = 0 },
	}
	for i, mut := range mutations {
		g := good
		mut(&g)
		if g.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPPNRoundTrip(t *testing.T) {
	g := Geometry{Channels: 3, DiesPerChan: 2, PlanesPerDie: 4, BlocksPerPlane: 7, PagesPerBlock: 9, PageBytes: 4096}
	f := func(chRaw, dieRaw, plRaw, blkRaw, pgRaw uint8) bool {
		a := Address{
			Channel: int(chRaw) % g.Channels,
			Die:     int(dieRaw) % g.DiesPerChan,
			Plane:   int(plRaw) % g.PlanesPerDie,
			Block:   int(blkRaw) % g.BlocksPerPlane,
			Page:    int(pgRaw) % g.PagesPerBlock,
		}
		return g.AddressOfPPN(g.PPN(a)) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPPNDense(t *testing.T) {
	g := Geometry{Channels: 2, DiesPerChan: 2, PlanesPerDie: 2, BlocksPerPlane: 2, PagesPerBlock: 2, PageBytes: 1}
	seen := make(map[int64]bool)
	for ch := 0; ch < 2; ch++ {
		for die := 0; die < 2; die++ {
			for pl := 0; pl < 2; pl++ {
				for blk := 0; blk < 2; blk++ {
					for pg := 0; pg < 2; pg++ {
						ppn := g.PPN(Address{ch, die, pl, blk, pg})
						if ppn < 0 || ppn >= int64(g.TotalPages()) {
							t.Fatalf("ppn %d out of range", ppn)
						}
						if seen[ppn] {
							t.Fatalf("duplicate ppn %d", ppn)
						}
						seen[ppn] = true
					}
				}
			}
		}
	}
	if len(seen) != g.TotalPages() {
		t.Fatalf("%d distinct PPNs, want %d", len(seen), g.TotalPages())
	}
}

func TestBlockAndDieIDs(t *testing.T) {
	g := PaperGeometry()
	a := Address{Channel: 3, Die: 2, Plane: 1, Block: 100, Page: 5}
	if id := g.DieID(a); id != 3*4+2 {
		t.Fatalf("DieID = %d", id)
	}
	wantBlock := ((3*4+2)*4+1)*1888 + 100
	if id := g.BlockID(a); id != wantBlock {
		t.Fatalf("BlockID = %d, want %d", id, wantBlock)
	}
}

func TestPageTypeInterleaving(t *testing.T) {
	if PageTypeOf(0) != LSB || PageTypeOf(1) != CSB || PageTypeOf(2) != MSB {
		t.Fatal("wrong LSB/CSB/MSB interleaving")
	}
	if PageTypeOf(575) != PageTypeOf(575%3) {
		t.Fatal("page type not periodic")
	}
	if LSB.String() != "LSB" || CSB.String() != "CSB" || MSB.String() != "MSB" {
		t.Fatal("page type names wrong")
	}
}
