package nand

// This file models read-reference-voltage (VREF) adjustment: the
// manufacturer's predetermined retry sequence (§II-B2), and the
// Swift-Read ones-counting estimator (§III-B) that both the SWR
// baseline and RiF's RVS module use to jump straight to near-optimal
// voltages.

// RetryStep is one entry of the manufacturer's predetermined VREF
// sequence: a uniform offset (model voltage units) applied to every
// threshold of the page, stepping toward the retention-shifted
// optimum.
type RetryStep float64

// DefaultRetrySequence is the predetermined read-retry VREF table a
// conventional controller walks on consecutive decode failures. The
// steps move the read voltages downward, chasing retention-induced
// charge loss.
func DefaultRetrySequence() []RetryStep {
	return []RetryStep{-25, -50, -75, -100, -130, -160, -200, -250}
}

// PageRBERAtOffset reports the RBER observed when the page is re-read
// with the retry table entry `offset`. The entry names the assumed
// top-state downshift (negated); each threshold's voltage moves by its
// proportional share, mirroring how charge loss scales with the state
// level. A conventional retry loop evaluates successive offsets from
// the sequence until the RBER drops below the ECC capability.
func (m *Model) PageRBERAtOffset(blockID int, pt PageType, pe int, retentionDays float64, reads int64, offset float64) float64 {
	c := m.conditionAt(blockID, pe, retentionDays, reads)
	return m.rberAcross(pt, c, func(j int) float64 {
		return m.defaultVref(j) + offset*(0.5+float64(2*j-1)/28)
	})
}

// ConventionalRetrySteps reports how many steps of the predetermined
// retry sequence a conventional controller needs before the page
// decodes (RBER <= capability), and whether it succeeds within the
// sequence. This is the NRR a sequence-walking SSD would see.
func (m *Model) ConventionalRetrySteps(blockID int, pt PageType, pe int, retentionDays float64, reads int64) (steps int, ok bool) {
	if !m.NeedsRetry(blockID, pt, pe, retentionDays, reads, DefaultVref) {
		return 0, true
	}
	for i, off := range DefaultRetrySequence() {
		if m.PageRBERAtOffset(blockID, pt, pe, retentionDays, reads, float64(off)) <= ECCCapabilityRBER {
			return i + 1, true
		}
	}
	return len(DefaultRetrySequence()), false
}

// SenseAboveFraction reports the fraction of cells whose Vth exceeds
// voltage v under the given condition — what a single-threshold sense
// measures. Swift-Read's heuristic feeds on this: with randomized
// data the expected fraction is a known constant, and the deviation
// encodes the Vth drift.
func (m *Model) SenseAboveFraction(blockID int, pe int, retentionDays float64, v float64) float64 {
	c := m.conditionAt(blockID, pe, retentionDays, 0)
	f := 0.0
	for i := 0; i < 8; i++ {
		f += qFunc((v - m.stateMean(i, c)) / c.sigma)
	}
	return f / 8
}

// SwiftReadResult reports the outcome of a Swift-Read estimation.
type SwiftReadResult struct {
	// EstimatedShift is the estimated top-state Vth downshift.
	EstimatedShift float64
	// TrueShift is the model's actual downshift, for accuracy checks.
	TrueShift float64
	// RBER is the page's RBER when re-read at the estimated voltages.
	RBER float64
}

// SwiftRead models the in-chip Swift-Read command: a first sense at a
// predefined voltage (the midpoint of the top threshold's fresh
// distributions — "the most representative VREF value"), whose
// ones-count reveals the drift, followed by a re-read at the
// estimated near-optimal voltages.
func (m *Model) SwiftRead(blockID int, pt PageType, pe int, retentionDays float64) SwiftReadResult {
	c := m.conditionAt(blockID, pe, retentionDays, 0)
	probe := m.defaultVref(7) // predefined probe voltage, top threshold
	measured := m.SenseAboveFraction(blockID, pe, retentionDays, probe)

	// Invert the forward model by bisecting on the shift that would
	// produce the measured fraction. The estimator quantizes to the
	// chip's VREF DAC step, leaving a small residual error.
	const dacStep = 10.0
	lo, hi := 0.0, 2*m.p.StateGap
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		// The above-probe fraction falls as the shift grows; a
		// too-high modeled fraction means the true shift is larger.
		if m.fractionAboveWithShift(probe, mid, c.sigma) > measured {
			lo = mid
		} else {
			hi = mid
		}
	}
	est := float64(int((lo+hi)/2/dacStep+0.5)) * dacStep

	// Re-read at voltages centered for the estimated shift; the
	// residual estimation error degrades RBER only marginally.
	rber := m.pageRBERWithAssumedShift(blockID, pt, pe, retentionDays, est)
	return SwiftReadResult{EstimatedShift: est, TrueShift: c.shiftUnit, RBER: rber}
}

// fractionAboveWithShift computes the fraction of cells above v if
// the top-state downshift were s (states scale linearly with index).
func (m *Model) fractionAboveWithShift(v, s, sigma float64) float64 {
	f := 0.0
	for i := 0; i < 8; i++ {
		mean := float64(i)*m.p.StateGap - s*(0.5+0.5*float64(i)/7)
		f += qFunc((v - mean) / sigma)
	}
	return f / 8
}

// pageRBERWithAssumedShift evaluates the RBER when the chip re-reads
// with voltages placed at the optimum implied by an assumed shift.
func (m *Model) pageRBERWithAssumedShift(blockID int, pt PageType, pe int, retentionDays float64, assumed float64) float64 {
	c := m.conditionAt(blockID, pe, retentionDays, 0)
	return m.rberAcross(pt, c, func(j int) float64 {
		// Voltage for threshold j assuming top-state shift `assumed`:
		// midpoint of the two adjacent states under that assumption.
		mj := func(i int) float64 { return float64(i)*m.p.StateGap - assumed*(0.5+0.5*float64(i)/7) }
		return (mj(j-1) + mj(j)) / 2
	})
}
