package nand

import "testing"

// Microbenchmarks for the reliability queries the SSD simulator makes
// on every page read.

func BenchmarkPageRBER(b *testing.B) {
	m := NewDefaultModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PageRBER(i&1023, CSB, 1000, 14, int64(i&255), DefaultVref)
	}
}

func BenchmarkPageRBEROptimal(b *testing.B) {
	m := NewDefaultModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PageRBER(i&1023, MSB, 2000, 21, 0, OptimalVref)
	}
}

func BenchmarkChunkRBER(b *testing.B) {
	m := NewDefaultModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ChunkRBER(0.005, uint64(i), i&3, 4)
	}
}

func BenchmarkRetentionUntilRetry(b *testing.B) {
	m := NewDefaultModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RetentionUntilRetry(i&255, CSB, 1000, 60)
	}
}

func BenchmarkSwiftRead(b *testing.B) {
	m := NewDefaultModel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SwiftRead(i&255, MSB, 1000, 20)
	}
}

func BenchmarkScramblePage(b *testing.B) {
	r := NewRandomizer(1)
	buf := make([]byte, 16*1024)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Scramble(buf, int64(i))
	}
}
