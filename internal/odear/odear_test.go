package odear

import (
	"math/rand/v2"
	"testing"

	"repro/internal/ldpc"
	"repro/internal/nand"
)

func testCode() *ldpc.Code { return ldpc.NewCode(4, 36, 256, 7) }

func TestRhoSScalesWithRows(t *testing.T) {
	cd := testCode()
	full := RhoS(cd, nand.ECCCapabilityRBER, false)
	pruned := RhoS(cd, nand.ECCCapabilityRBER, true)
	if pruned <= 0 || full <= pruned {
		t.Fatalf("rhoS full=%d pruned=%d", full, pruned)
	}
	// Pruning keeps one of four block rows; thresholds differ by ~4x.
	if ratio := float64(full) / float64(pruned); ratio < 3 || ratio > 5 {
		t.Fatalf("full/pruned threshold ratio = %v", ratio)
	}
}

func TestRhoSMatchesEmpiricalWeight(t *testing.T) {
	// The analytic threshold must sit near the measured mean syndrome
	// weight of pages at exactly the capability RBER (Fig. 10's
	// construction of ρs).
	cd := testCode()
	rp := NewRP(cd, nand.ECCCapabilityRBER, true)
	rng := rand.New(rand.NewPCG(1, 1))
	k := int(nand.ECCCapabilityRBER*float64(cd.N()) + 0.5)
	sum, trials := 0, 200
	for i := 0; i < trials; i++ {
		cw := ldpc.FlipExact(cd.Encode(ldpc.RandomBits(cd.K(), rng)), k, rng)
		sum += rp.Weight(cw)
	}
	mean := float64(sum) / float64(trials)
	if d := mean - float64(rp.RhoS); d > 8 || d < -8 {
		t.Fatalf("empirical mean weight %.1f vs rhoS %d", mean, rp.RhoS)
	}
}

func TestPredictCleanPage(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(2, 1))
	cw := cd.Encode(ldpc.RandomBits(cd.K(), rng))
	for _, approx := range []bool{true, false} {
		rp := NewRP(cd, nand.ECCCapabilityRBER, approx)
		if rp.Predict(cw) {
			t.Fatalf("approx=%v: clean page predicted to need retry", approx)
		}
	}
}

func TestPredictHopelessPage(t *testing.T) {
	cd := testCode()
	rng := rand.New(rand.NewPCG(3, 1))
	cw := ldpc.FlipRandom(cd.Encode(ldpc.RandomBits(cd.K(), rng)), 0.03, rng)
	for _, approx := range []bool{true, false} {
		rp := NewRP(cd, nand.ECCCapabilityRBER, approx)
		if !rp.Predict(cw) {
			t.Fatalf("approx=%v: hopeless page predicted correctable", approx)
		}
	}
}

func TestPredictAccuracyAwayFromCapability(t *testing.T) {
	// Fig. 14: far from the capability the predictor is essentially
	// always right. Check both sides at 2x distance.
	cd := testCode()
	rp := NewRP(cd, nand.ECCCapabilityRBER, true)
	dec := ldpc.NewMinSumDecoder(cd, 0)
	rng := rand.New(rand.NewPCG(4, 1))
	for _, rber := range []float64{0.004, 0.017} {
		agree, trials := 0, 40
		for i := 0; i < trials; i++ {
			cw := cd.Encode(ldpc.RandomBits(cd.K(), rng))
			k := int(rber*float64(cd.N()) + 0.5)
			bad := ldpc.FlipExact(cw, k, rng)
			predictRetry := rp.Predict(bad)
			actualFail := !dec.Decode(bad).OK
			if predictRetry == actualFail {
				agree++
			}
		}
		if float64(agree)/float64(trials) < 0.9 {
			t.Fatalf("rber=%v: accuracy %d/%d below 90%%", rber, agree, trials)
		}
	}
}

func TestPredictRearrangedMatchesPredict(t *testing.T) {
	cd := testCode()
	rp := NewRP(cd, nand.ECCCapabilityRBER, true)
	rng := rand.New(rand.NewPCG(5, 1))
	for _, rber := range []float64{0.002, 0.0085, 0.02} {
		cw := ldpc.FlipRandom(cd.Encode(ldpc.RandomBits(cd.K(), rng)), rber, rng)
		if rp.Predict(cw) != rp.PredictRearranged(cd.Rearrange(cw)) {
			t.Fatalf("rber=%v: rearranged prediction disagrees", rber)
		}
	}
}

func TestRVSReselectRescues(t *testing.T) {
	m := nand.NewDefaultModel(1)
	rvs := &RVS{Model: m}
	// A condition that needs retry at default VREF.
	if !m.NeedsRetry(0, nand.MSB, 2000, 20, 0, nand.DefaultVref) {
		t.Skip("condition unexpectedly healthy")
	}
	rber := rvs.Reselect(0, nand.MSB, 2000, 20)
	if rber > nand.ECCCapabilityRBER {
		t.Fatalf("RVS re-read RBER %v above capability", rber)
	}
}

func TestNewEngineWiring(t *testing.T) {
	cd := testCode()
	eng := NewEngine(cd, nand.NewDefaultModel(1), nand.ECCCapabilityRBER)
	if eng.RP == nil || eng.RVS == nil || !eng.RP.Approximate {
		t.Fatal("engine not assembled with approximate RP")
	}
}

func TestAccuracyModelShape(t *testing.T) {
	a := DefaultAccuracyModel(nand.ECCCapabilityRBER)
	// Exactly at the capability: coin flip.
	if acc := a.Accuracy(nand.ECCCapabilityRBER); acc < 0.49 || acc > 0.51 {
		t.Fatalf("accuracy at capability = %v, want ~0.5", acc)
	}
	// Far away: near the floor.
	if acc := a.Accuracy(0.02); acc < 0.99 {
		t.Fatalf("accuracy far above capability = %v", acc)
	}
	if acc := a.Accuracy(0.001); acc < 0.99 {
		t.Fatalf("accuracy far below capability = %v", acc)
	}
	// Monotone recovery on both sides.
	if a.Accuracy(0.009) >= a.Accuracy(0.012) {
		t.Fatal("accuracy not recovering above capability")
	}
	if a.Accuracy(0.008) >= a.Accuracy(0.005) {
		t.Fatal("accuracy not recovering below capability")
	}
}

func TestAccuracyModelHeadlineNumber(t *testing.T) {
	// Paper: 98.7% average prediction accuracy for uncorrectable
	// pages over the feasible RBER range (Fig. 14).
	a := DefaultAccuracyModel(nand.ECCCapabilityRBER)
	mean := a.MeanAccuracyAbove(0.033, 128)
	if mean < 0.975 || mean > 0.9999 {
		t.Fatalf("mean accuracy above capability = %v, paper ~0.987", mean)
	}
}

func TestPredictCorrectUsesCallerRandomness(t *testing.T) {
	a := DefaultAccuracyModel(nand.ECCCapabilityRBER)
	if !a.PredictCorrect(0.02, 0.0) {
		t.Fatal("u=0 must always be correct")
	}
	if a.PredictCorrect(0.02, 0.99999) {
		t.Fatal("u~1 must be incorrect for floor<1")
	}
}

func TestHardwareConstants(t *testing.T) {
	// §VI-C figures are part of the public contract of this package.
	if AreaMM2 != 0.012 || PowerMW != 1.28 {
		t.Fatal("synthesis constants drifted")
	}
	if PredictionEnergyNJ != 3.2 || AvoidedTransferEnergyNJ != 907 {
		t.Fatal("energy constants drifted")
	}
	if TPredMicros != 2.5 {
		t.Fatal("prediction latency drifted")
	}
}
