package odear

import "math"

// AccuracyModel is the probability form of RP used inside the SSD
// simulator: given a page's RBER it yields the probability that RP's
// correctability prediction agrees with the real LDPC outcome. The
// shape follows the paper's Figs. 11/14: near-perfect far from the
// capability, dipping to 50% exactly at it, with the poor-accuracy
// band covering "less than 2% of the overall RBER range".
type AccuracyModel struct {
	// Capability is the ECC correction capability RBER.
	Capability float64
	// Width is the RBER distance over which accuracy recovers from
	// 50% toward 100% (e-folding scale).
	Width float64
	// Floor is the asymptotic accuracy far from the capability
	// (slightly below 1 for the approximate predictor).
	Floor float64
}

// DefaultAccuracyModel returns the model calibrated to the paper's
// approximate predictor: 98.7% average accuracy for uncorrectable
// pages (Fig. 14).
func DefaultAccuracyModel(capability float64) AccuracyModel {
	return AccuracyModel{Capability: capability, Width: 0.00035, Floor: 0.995}
}

// Accuracy reports P(RP prediction correct | page RBER).
func (a AccuracyModel) Accuracy(rber float64) float64 {
	d := math.Abs(rber - a.Capability)
	return a.Floor - (a.Floor-0.5)*math.Exp(-d/a.Width)
}

// PredictCorrect reports whether a prediction at this RBER is correct,
// given a uniform random draw u in [0,1) supplied by the caller (so
// the simulator controls the random stream).
func (a AccuracyModel) PredictCorrect(rber, u float64) bool {
	return u < a.Accuracy(rber)
}

// MeanAccuracyAbove reports the average accuracy over RBER values in
// (Capability, hi], the headline "prediction accuracy for
// uncorrectable pages" the paper quotes (99.1% full, 98.7% approx).
func (a AccuracyModel) MeanAccuracyAbove(hi float64, steps int) float64 {
	if steps <= 0 {
		steps = 64
	}
	total := 0.0
	for i := 1; i <= steps; i++ {
		r := a.Capability + (hi-a.Capability)*float64(i)/float64(steps)
		total += a.Accuracy(r)
	}
	return total / float64(steps)
}
