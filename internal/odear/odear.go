// Package odear implements the RiF paper's On-Die EArly-Retry engine:
// the read-retry predictor (RP) that estimates page correctability
// from an approximate syndrome weight, and the read-voltage selector
// (RVS) that launches an internal Swift-Read when RP predicts an
// off-chip decode would fail.
//
// Two layers are provided, mirroring the paper's methodology:
//
//   - A functional layer (RP, RVS) that operates on real codewords and
//     the real QC-LDPC machinery — used to regenerate Figs. 10, 11 and
//     14 and to validate the predictor.
//   - A probability layer (AccuracyModel) used inside the SSD
//     simulator, exactly as the paper's extended MQSim-E "simulates the
//     RP module of a RiF-enabled flash chip [with] a probability-based
//     model using the RP prediction accuracy function".
package odear

import (
	"math"

	"repro/internal/ldpc"
	"repro/internal/nand"
)

// Hardware cost constants from the paper's §VI-C synthesis results
// (130 nm, 100 MHz) and energy accounting.
const (
	// AreaMM2 is the RP module's synthesized area.
	AreaMM2 = 0.012
	// PowerMW is the RP module's power draw.
	PowerMW = 1.28
	// PredictionEnergyNJ is the energy of one read-retry prediction.
	PredictionEnergyNJ = 3.2
	// AvoidedTransferEnergyNJ is the energy saved by not moving one
	// unrecoverable page across the channel.
	AvoidedTransferEnergyNJ = 907
	// TPredMicros is the prediction latency for a 4-KiB chunk (§V-B).
	TPredMicros = 2.5
)

// RP is the read-retry predictor. It computes a syndrome weight of the
// sensed data and compares it to the correctability threshold ρs.
type RP struct {
	code *ldpc.Code
	// RhoS is the correctability threshold: weights above it predict
	// an off-chip decode failure.
	RhoS int
	// Approximate selects the hardware heuristics of §V-A: prune to
	// the first block row of syndromes and check a single chunk.
	Approximate bool
}

// NewRP builds a predictor for the code with the threshold calibrated
// for the given ECC correction capability (RBER). approximate selects
// the §V-A pruned/chunked form the paper ships (Fig. 14); the full
// form corresponds to Fig. 11.
func NewRP(code *ldpc.Code, capability float64, approximate bool) *RP {
	return &RP{
		code:        code,
		RhoS:        RhoS(code, capability, approximate),
		Approximate: approximate,
	}
}

// RhoS computes the correctability threshold for a code: the expected
// syndrome weight of a page whose RBER equals the ECC capability
// (§IV-B: "we set ρs to the corresponding syndrome weight for the
// RBER value of 0.0085"). For a parity check of degree d on a BSC
// with crossover p, P(syndrome bit = 1) = (1-(1-2p)^d)/2.
func RhoS(code *ldpc.Code, capability float64, approximate bool) int {
	expected := 0.0
	rows := code.R
	if approximate {
		rows = 1 // syndrome pruning: only the first block row
	}
	for i := 0; i < rows; i++ {
		deg := 0
		for j := 0; j < code.C; j++ {
			if code.Shifts[i][j] != ldpc.ZeroBlock {
				deg++
			}
		}
		pOne := (1 - math.Pow(1-2*capability, float64(deg))) / 2
		expected += float64(code.T) * pOne
	}
	return int(expected + 0.5)
}

// Predict reports whether RP expects an off-chip LDPC decode of the
// sensed codeword to fail (true = retry needed).
func (rp *RP) Predict(sensed ldpc.Bits) bool {
	return rp.Weight(sensed) > rp.RhoS
}

// PredictRearranged is Predict for data stored in the §V-B rearranged
// layout — the on-die datapath form (XOR of segments, Fig. 16).
// It only applies to the approximate predictor.
func (rp *RP) PredictRearranged(sensed ldpc.Bits) bool {
	return rp.code.RearrangedPrunedWeight(sensed) > rp.RhoS
}

// Weight computes the syndrome weight RP thresholds against: the full
// weight, or the first-block-row weight when Approximate.
func (rp *RP) Weight(sensed ldpc.Bits) int {
	if rp.Approximate {
		return rp.code.FirstRowSyndromeWeight(sensed)
	}
	return rp.code.SyndromeWeight(sensed)
}

// RVS is the read-voltage selector: when RP flags a page, RVS runs an
// internal Swift-Read against the NAND model and re-reads the page at
// the estimated near-optimal voltages, all without controller help.
type RVS struct {
	Model *nand.Model
}

// Reselect performs the internal Swift-Read for the page's condition
// and reports the RBER of the re-read page.
func (rvs *RVS) Reselect(blockID int, pt nand.PageType, pe int, retentionDays float64) float64 {
	return rvs.Model.SwiftRead(blockID, pt, pe, retentionDays).RBER
}

// Engine bundles RP and RVS: a functional ODEAR engine for one plane.
type Engine struct {
	RP  *RP
	RVS *RVS
}

// NewEngine assembles an ODEAR engine from a code and a NAND model,
// using the approximate (hardware) predictor.
func NewEngine(code *ldpc.Code, model *nand.Model, capability float64) *Engine {
	return &Engine{
		RP:  NewRP(code, capability, true),
		RVS: &RVS{Model: model},
	}
}
