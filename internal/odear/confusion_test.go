package odear

import "testing"

func TestConfusionRecord(t *testing.T) {
	var c Confusion
	c.Record(true, true)   // TP
	c.Record(true, true)   // TP
	c.Record(true, false)  // FP
	c.Record(false, true)  // FN
	c.Record(false, false) // TN
	c.Record(false, false) // TN
	c.Record(false, false) // TN

	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 3 {
		t.Fatalf("cells = %+v", c)
	}
	if c.Predictions() != 7 {
		t.Fatalf("predictions = %d", c.Predictions())
	}
	if c.Mispredictions() != 2 {
		t.Fatalf("mispredictions = %d", c.Mispredictions())
	}
	if got, want := c.Accuracy(), 5.0/7.0; got != want {
		t.Fatalf("accuracy = %v, want %v", got, want)
	}
	if got, want := c.UncorrectableAccuracy(), 2.0/3.0; got != want {
		t.Fatalf("uncorrectable accuracy = %v, want %v", got, want)
	}
}

func TestConfusionEmptyAndAdd(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 1 || c.UncorrectableAccuracy() != 1 {
		t.Fatal("empty matrix should report perfect accuracy")
	}
	other := Confusion{TP: 1, FP: 2, FN: 3, TN: 4}
	c.Add(other)
	c.Add(other)
	if c.TP != 2 || c.FP != 4 || c.FN != 6 || c.TN != 8 {
		t.Fatalf("after Add twice: %+v", c)
	}
	if c.String() == "" {
		t.Fatal("String() empty")
	}
}
