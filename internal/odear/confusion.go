package odear

import "fmt"

// Confusion is the RP prediction confusion matrix of a run, in the
// orientation of the paper's accuracy discussion: "positive" means RP
// predicts the off-chip decode would fail (a retry is needed).
//
//   - TP: predicted fail, page really uncorrectable — RiF's win case.
//   - FP: predicted fail, page was correctable — a wasted in-die
//     re-read (extra tR) but no correctness issue.
//   - FN: predicted OK, page really uncorrectable — the doomed page
//     crosses the channel and burns a full failed decode.
//   - TN: predicted OK, page correctable — the common fast path.
type Confusion struct {
	TP int64 `json:"tp"`
	FP int64 `json:"fp"`
	FN int64 `json:"fn"`
	TN int64 `json:"tn"`
}

// Record folds one prediction into the matrix.
func (c *Confusion) Record(predictedFail, actuallyFails bool) {
	switch {
	case predictedFail && actuallyFails:
		c.TP++
	case predictedFail && !actuallyFails:
		c.FP++
	case !predictedFail && actuallyFails:
		c.FN++
	default:
		c.TN++
	}
}

// Add accumulates another matrix.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.FN += o.FN
	c.TN += o.TN
}

// Predictions reports the total number of predictions.
func (c Confusion) Predictions() int64 { return c.TP + c.FP + c.FN + c.TN }

// Mispredictions reports the number of wrong predictions.
func (c Confusion) Mispredictions() int64 { return c.FP + c.FN }

// Accuracy reports the overall fraction of correct predictions
// (1 when no predictions were made).
func (c Confusion) Accuracy() float64 {
	n := c.Predictions()
	if n == 0 {
		return 1
	}
	return float64(c.TP+c.TN) / float64(n)
}

// UncorrectableAccuracy reports the accuracy over uncorrectable pages
// only, TP/(TP+FN) — the paper's headline "prediction accuracy for
// uncorrectable pages" (98.7% for the approximate predictor,
// Fig. 14). Returns 1 when no uncorrectable page was seen.
func (c Confusion) UncorrectableAccuracy() float64 {
	n := c.TP + c.FN
	if n == 0 {
		return 1
	}
	return float64(c.TP) / float64(n)
}

// String summarizes the matrix for experiment logs.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d fn=%d tn=%d acc=%.4f uncor-acc=%.4f",
		c.TP, c.FP, c.FN, c.TN, c.Accuracy(), c.UncorrectableAccuracy())
}
