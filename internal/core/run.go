package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/plot"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// This file is the single experiment dispatcher shared by every
// front-end (cmd/rifsim, cmd/rifserve, tests): one experiment name
// maps to one study plus its text report. Both the one-shot CLI and
// the long-running service call RunExperiment with the same
// RunParams, which is what makes a served job byte-for-byte
// replayable as a local rifsim invocation.

// ValidExperiments lists every experiment RunExperiment accepts, in
// presentation order; unknown names echo it so the valid set is
// discoverable from the command line and the job-spec error message.
func ValidExperiments() []string {
	return []string{
		"6", "7", "8", "17", "18", "19", "overhead",
		"ablate-chunk", "ablate-buffer", "ablate-accuracy",
		"ablate-scheduling", "ablate-secondcheck",
		"refresh", "tenants", "chaos", "tailsweep", "agesweep",
	}
}

// ValidExperiment reports whether name is a known experiment.
func ValidExperiment(name string) bool {
	for _, v := range ValidExperiments() {
		if v == name {
			return true
		}
	}
	return false
}

// Validate reports errors in the host-facing numeric knobs a CLI flag
// or job spec feeds into RunParams, so both front-ends reject bad
// sizing identically instead of silently misbehaving deep inside a
// study. Workers 0 means auto (one per CPU) and is valid here; the
// rifsim CLI additionally rejects an explicit -workers 0.
func (p RunParams) Validate() error {
	if p.Requests <= 0 {
		return fmt.Errorf("core: requests must be >= 1 (got %d)", p.Requests)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: workers must be >= 0 (got %d; 0 means one per CPU)", p.Workers)
	}
	if p.FootprintPages < 0 {
		return fmt.Errorf("core: footprint pages must be >= 0 (got %d)", p.FootprintPages)
	}
	if err := p.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// RunExperiment runs one named experiment with the given params and
// writes its text report to out. The report bytes depend only on
// (name, params) — never on worker count or host clock — so any two
// front-ends given the same inputs produce identical output.
func RunExperiment(out io.Writer, name string, p RunParams) error {
	switch name {
	case "6":
		tbl, err := Fig6(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 6 — SSDone vs SSDzero I/O bandwidth (MB/s)")
		for _, pe := range PaperPECycles {
			fmt.Fprintf(out, "%dK P/E:\n", pe/1000)
			for _, w := range []string{"Ali121", "Ali124", "Sys0", "Sys1"} {
				zero := tbl.Get(ssd.Zero, w, pe)
				one := tbl.Get(ssd.One, w, pe)
				if zero <= 0 {
					fmt.Fprintf(out, "  %-8s SSDzero=%6.0f  SSDone=%6.0f  (n/a)\n", w, zero, one)
					continue
				}
				fmt.Fprintf(out, "  %-8s SSDzero=%6.0f  SSDone=%6.0f  (%+.1f%%)\n",
					w, zero, one, 100*(one/zero-1))
			}
		}
		return nil

	case "7", "8":
		results, err := Timelines(p.Workers)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Figs. 7/8 — 256-KiB read execution timelines")
		fmt.Fprint(out, FormatTimelines(results))
		for _, scheme := range []ssd.Scheme{ssd.Zero, ssd.One, ssd.RiF} {
			gantt, err := TimelineGantt(scheme)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "\n%v (1 column = 5us; lowercase = retry):\n%s", scheme, gantt)
		}
		return nil

	case "17":
		tbl, err := Fig17(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 17 — I/O bandwidth normalized to SENC")
		fmt.Fprint(out, tbl.Format(ssd.Sentinel, ssd.AllSchemes(), trace.Names()))
		for _, pe := range PaperPECycles {
			fmt.Fprintf(out, "RiF over SENC at %dK P/E: %+.1f%% (paper: +23.8/+47.4/+72.1%%)\n",
				pe/1000, 100*tbl.GeoMeanGain(ssd.RiF, ssd.Sentinel, pe))
		}
		var bars []plot.Bar
		for _, s := range ssd.AllSchemes() {
			bars = append(bars, plot.Bar{
				Label: s.String(),
				Value: 1 + tbl.GeoMeanGain(s, ssd.Sentinel, 2000),
			})
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, plot.HBar("geomean bandwidth vs SENC at 2K P/E", bars, 50))
		return nil

	case "18":
		cells, err := Fig18(p, []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.SWRPlus, ssd.RPOnly, ssd.RiF})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 18 — channel usage breakdown")
		fmt.Fprint(out, FormatUsage(cells))
		return nil

	case "19":
		curves, err := Fig19(p, []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.SWRPlus, ssd.RPOnly, ssd.RiF})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Fig. 19 — Ali124 read-latency percentiles")
		fmt.Fprint(out, FormatLatency(curves))
		for _, pe := range PaperPECycles {
			var series []plot.Series
			for _, c := range curves {
				if c.PECycles != pe {
					continue
				}
				s := plot.Series{Name: c.Scheme.String()}
				for _, pt := range c.CDF {
					s.Points = append(s.Points, plot.XY{X: pt.X / 1000, Y: pt.F})
				}
				series = append(series, s)
			}
			fmt.Fprintln(out)
			fmt.Fprint(out, plot.Chart(
				fmt.Sprintf("CDF of read latency (ms), %dK P/E cycles", pe/1000),
				series, 64, 14))
		}
		return nil

	case "overhead":
		o, err := OverheadStudy(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "§VI-C — RP module overhead")
		fmt.Fprint(out, o.Format())
		return nil

	case "ablate-chunk":
		pts, err := AblateChunkSize(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — RP chunk size (paper picks 4 KiB, §V-A1)")
		fmt.Fprint(out, FormatChunkAblation(pts))
		return nil

	case "ablate-buffer":
		pts, err := AblateECCBuffer(p, ssd.One)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — channel ECC buffer depth (SSDone at 2K P/E)")
		fmt.Fprint(out, FormatBufferAblation(pts))
		return nil

	case "ablate-accuracy":
		pts, err := AblateAccuracy(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — RP accuracy floor (RiF at 2K P/E)")
		fmt.Fprint(out, FormatAccuracyAblation(pts))
		return nil

	case "ablate-scheduling":
		pts, err := AblateDieScheduling(p, []ssd.Scheme{ssd.One, ssd.RiF})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — die scheduling policy (Sys0 at 2K P/E)")
		fmt.Fprint(out, FormatScheduling(pts))
		return nil

	case "refresh":
		pts, err := AblateRefreshHorizon(p, ssd.One, 1000)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — refresh horizon vs read performance (SSDone at 1K P/E)")
		fmt.Fprint(out, FormatRefresh(pts))
		return nil

	case "tenants":
		results, err := MultiTenantStudy(p,
			[]ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.RiF}, 2000)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — multi-queue tenant isolation at 2K P/E")
		fmt.Fprint(out, FormatMultiTenant(results))
		return nil

	case "chaos":
		pts, err := ChaosStudy(p, nil, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — chaos sweep: every fault class injected, Ali124 at 2K P/E")
		fmt.Fprint(out, FormatChaos(pts))
		return nil

	case "tailsweep":
		pts, err := TailSweep(p, TailSweepSchemes(), "Ali124", 2000, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — open-loop tail sweep: Poisson arrivals, Ali124 at 2K P/E")
		fmt.Fprint(out, FormatTailSweep(pts))
		gain, rate, err := BestSubSaturationGain(pts, ssd.RiF, ssd.Sentinel)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nRiF P99.99 cut vs SENC at %.0f IOPS (sub-saturation): %.1f%% (closed-loop measured 62.7%%, paper Fig. 19 ~91.8%%)\n",
			rate, 100*gain)
		return nil

	case "agesweep":
		pts, err := AgeSweep(p, AgeSweepSchemes(), ageSweepEpochs,
			ageSweepEpochDays, ageSweepDuty, "Ali124")
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Study — drive-age sweep: a simulated drive-year of wear, read disturb and read-reclaim, Ali124")
		fmt.Fprint(out, FormatAgeSweep(pts))
		var bw, merr []plot.Series
		for _, sc := range AgeSweepSchemes() {
			sb := plot.Series{Name: sc.String()}
			se := plot.Series{Name: sc.String()}
			for _, pt := range pts {
				if pt.Scheme != sc {
					continue
				}
				months := pt.AgeDays / ageSweepEpochDays
				sb.Points = append(sb.Points, plot.XY{X: months, Y: pt.MBps})
				se.Points = append(se.Points, plot.XY{X: months, Y: 100 * pt.MediaErrRate})
			}
			bw = append(bw, sb)
			merr = append(merr, se)
		}
		fmt.Fprintln(out)
		fmt.Fprint(out, plot.Chart("I/O bandwidth (MB/s) vs drive age (months)", bw, 64, 14))
		fmt.Fprintln(out)
		fmt.Fprint(out, plot.Chart("media-error requests (%) vs drive age (months)", merr, 64, 14))
		return nil

	case "ablate-secondcheck":
		res, err := AblateSecondCheck(p)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Ablation — footnote-4 second RP pass (RiF at 3K P/E)")
		_, _, u0, _ := res.Without.Channels.Fractions()
		_, _, u1, _ := res.With.Channels.Fractions()
		fmt.Fprintf(out, "without: %7.0f MB/s, uncor %.2f%%, avoided %d\n",
			res.Without.Bandwidth(), 100*u0, res.Without.AvoidedTransfers)
		fmt.Fprintf(out, "with:    %7.0f MB/s, uncor %.2f%%, avoided %d\n",
			res.With.Bandwidth(), 100*u1, res.With.AvoidedTransfers)
		return nil
	}
	return fmt.Errorf("unknown experiment %q; valid figures/ablations: %s",
		name, strings.Join(ValidExperiments(), ", "))
}
