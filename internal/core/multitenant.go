package core

import (
	"fmt"
	"strings"

	"repro/internal/ssd"
)

// TenantResult is one tenant's outcome in the multi-queue study.
type TenantResult struct {
	Workload string
	MBps     float64
	P99US    float64
	P9999US  float64
}

// MultiTenantResult compares how a scheme isolates a read-heavy
// tenant from a write-heavy neighbour on a shared device.
type MultiTenantResult struct {
	Scheme  ssd.Scheme
	Tenants []TenantResult
}

// MultiTenantStudy runs two tenants — the most read-intensive trace
// and the most write-intensive trace — on shared hardware through two
// NVMe-style host queues, for each scheme. Read-retry waste hurts the
// read tenant's tail the most, so the study shows RiF's isolation
// benefit (the FlashShare-style concern the paper's intro cites).
func MultiTenantStudy(p RunParams, schemes []ssd.Scheme, pe int) ([]MultiTenantResult, error) {
	names := []string{"Ali124", "Ali2"}
	return gridMap(p, len(schemes), func(i int) (MultiTenantResult, error) {
		scheme := schemes[i]
		cfg := p.BuildConfig(scheme, pe)
		var queues []ssd.HostQueue
		for _, name := range names {
			w, err := p.workload(name)
			if err != nil {
				return MultiTenantResult{}, err
			}
			queues = append(queues, ssd.HostQueue{Workload: w, Depth: cfg.QueueDepth / 2})
		}
		// The primary workload drives cold-age lookups for its own
		// requests; each queue's generator carries its own profile.
		dev, err := ssd.New(cfg, queues[0].Workload)
		if err != nil {
			return MultiTenantResult{}, err
		}
		m, perQueue, err := dev.RunQueues(queues, p.Requests/2)
		if err != nil {
			return MultiTenantResult{}, err
		}
		res := MultiTenantResult{Scheme: scheme}
		for qi, name := range names {
			q := &perQueue[qi]
			res.Tenants = append(res.Tenants, TenantResult{
				Workload: name,
				MBps:     q.Bandwidth(m.Makespan.Seconds()),
				P99US:    q.ReadLatencies.Percentile(99),
				P9999US:  q.ReadLatencies.Percentile(99.99),
			})
		}
		return res, nil
	})
}

// FormatMultiTenant renders the study.
func FormatMultiTenant(results []MultiTenantResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %9s %9s %10s\n", "scheme", "tenant", "MB/s", "p99us", "p99.99us")
	for _, r := range results {
		for _, t := range r.Tenants {
			fmt.Fprintf(&b, "%-8s %-8s %9.0f %9.0f %10.0f\n",
				r.Scheme, t.Workload, t.MBps, t.P99US, t.P9999US)
		}
	}
	return b.String()
}
