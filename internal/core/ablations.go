package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/ssd"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// RP chunk size (§V-A1), the channel ECC buffer depth (§III-B3), the
// prediction accuracy requirement (§IV-B) and the footnote-4 second
// prediction pass.

// ChunkAblationPoint is one RP chunk-size configuration.
type ChunkAblationPoint struct {
	ChunkKiB  int
	TPredUS   float64
	Floor     float64 // asymptotic prediction accuracy
	MBps      float64
	UncorFrac float64
}

// chunkConfigs maps chunk size to its prediction latency (the page
// buffer readout scales with the chunk, §V-B: 2.5 us for 4 KiB) and
// its accuracy floor (smaller chunks sample less of the page, so the
// chunk-to-page RBER noise of Fig. 12 costs accuracy).
var chunkConfigs = []struct {
	kib   int
	tPred float64
	floor float64
}{
	{1, 0.625, 0.975},
	{2, 1.25, 0.988},
	{4, 2.5, 0.995},
	{8, 5.0, 0.998},
	{16, 10.0, 0.999},
}

// AblateChunkSize sweeps the RP chunk size on a worn, read-heavy run
// and reports the bandwidth/accuracy trade the paper resolves at
// 4 KiB.
func AblateChunkSize(p RunParams) ([]ChunkAblationPoint, error) {
	return gridMap(p, len(chunkConfigs), func(i int) (ChunkAblationPoint, error) {
		cc := chunkConfigs[i]
		cfg := p.BuildConfig(ssd.RiF, 2000)
		cfg.Timing.TPred = sim.Time(cc.tPred * float64(sim.Microsecond))
		cfg.PredictionFloor = cc.floor
		m, err := runConfig(p, cfg, "Ali124")
		if err != nil {
			return ChunkAblationPoint{}, err
		}
		_, _, uncor, _ := m.Channels.Fractions()
		return ChunkAblationPoint{
			ChunkKiB:  cc.kib,
			TPredUS:   cc.tPred,
			Floor:     cc.floor,
			MBps:      m.Bandwidth(),
			UncorFrac: uncor,
		}, nil
	})
}

// BufferAblationPoint is one ECC buffer depth configuration.
type BufferAblationPoint struct {
	Slots       int
	MBps        float64
	ECCWaitFrac float64
}

// AblateECCBuffer sweeps the channel ECC raw-data buffer depth for
// the off-chip baseline, showing how much of the ECCWAIT loss deeper
// buffers can (and cannot) recover.
func AblateECCBuffer(p RunParams, scheme ssd.Scheme) ([]BufferAblationPoint, error) {
	depths := []int{1, 2, 4, 8, 16}
	return gridMap(p, len(depths), func(i int) (BufferAblationPoint, error) {
		cfg := p.BuildConfig(scheme, 2000)
		cfg.ECCBufferSlots = depths[i]
		m, err := runConfig(p, cfg, "Ali124")
		if err != nil {
			return BufferAblationPoint{}, err
		}
		_, _, _, wait := m.Channels.Fractions()
		return BufferAblationPoint{Slots: depths[i], MBps: m.Bandwidth(), ECCWaitFrac: wait}, nil
	})
}

// AccuracyAblationPoint is one prediction-floor configuration.
type AccuracyAblationPoint struct {
	Floor     float64
	MBps      float64
	UncorFrac float64
}

// AblateAccuracy sweeps the RP accuracy floor, quantifying how much
// prediction quality RiF's benefit actually needs (§IV-B's "
// sufficiently high prediction accuracy" requirement).
func AblateAccuracy(p RunParams) ([]AccuracyAblationPoint, error) {
	floors := []float64{0.80, 0.90, 0.95, 0.98, 0.995}
	return gridMap(p, len(floors), func(i int) (AccuracyAblationPoint, error) {
		cfg := p.BuildConfig(ssd.RiF, 2000)
		cfg.PredictionFloor = floors[i]
		m, err := runConfig(p, cfg, "Ali124")
		if err != nil {
			return AccuracyAblationPoint{}, err
		}
		_, _, uncor, _ := m.Channels.Fractions()
		return AccuracyAblationPoint{Floor: floors[i], MBps: m.Bandwidth(), UncorFrac: uncor}, nil
	})
}

// SecondCheckResult compares RiF with and without the footnote-4
// second prediction pass under conditions harsh enough that some
// re-reads stay uncorrectable.
type SecondCheckResult struct {
	Without, With ssd.Metrics
}

// AblateSecondCheck measures the second-check extension at very heavy
// wear (3K P/E), where adjusted-VREF re-reads occasionally remain
// above the capability.
func AblateSecondCheck(p RunParams) (*SecondCheckResult, error) {
	runs, err := gridMap(p, 2, func(i int) (*ssd.Metrics, error) {
		cfg := p.BuildConfig(ssd.RiF, 3000)
		cfg.RiFSecondCheck = i == 1
		return runConfig(p, cfg, "Ali124")
	})
	if err != nil {
		return nil, err
	}
	return &SecondCheckResult{Without: *runs[0], With: *runs[1]}, nil
}

// SchedulingPoint is one die-policy configuration result.
type SchedulingPoint struct {
	Policy      ssd.DiePolicy
	Scheme      ssd.Scheme
	MBps        float64
	P99US       float64
	Suspensions int64
}

// AblateDieScheduling sweeps the die scheduling policy (FIFO /
// read-priority / program suspension) for the given schemes on a
// mixed read-write workload: suspension is the orthogonal
// modern-controller optimization, and the study shows it is
// complementary to — not a substitute for — RiF.
func AblateDieScheduling(p RunParams, schemes []ssd.Scheme) ([]SchedulingPoint, error) {
	type cellKey struct {
		scheme ssd.Scheme
		policy ssd.DiePolicy
	}
	var keys []cellKey
	for _, scheme := range schemes {
		for _, policy := range []ssd.DiePolicy{ssd.DieFIFO, ssd.DieReadPriority, ssd.DieSuspension} {
			keys = append(keys, cellKey{scheme, policy})
		}
	}
	return gridMap(p, len(keys), func(i int) (SchedulingPoint, error) {
		k := keys[i]
		cfg := p.BuildConfig(k.scheme, 2000)
		cfg.DiePolicy = k.policy
		m, err := runConfig(p, cfg, "Sys0")
		if err != nil {
			return SchedulingPoint{}, err
		}
		return SchedulingPoint{
			Policy:      k.policy,
			Scheme:      k.scheme,
			MBps:        m.Bandwidth(),
			P99US:       m.ReadLatencies.Percentile(99),
			Suspensions: m.Suspensions,
		}, nil
	})
}

// FormatScheduling renders the die-policy sweep.
func FormatScheduling(points []SchedulingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-14s %9s %9s %12s\n", "scheme", "policy", "MB/s", "p99us", "suspensions")
	for _, pt := range points {
		fmt.Fprintf(&b, "%-8s %-14s %9.0f %9.0f %12d\n",
			pt.Scheme, pt.Policy, pt.MBps, pt.P99US, pt.Suspensions)
	}
	return b.String()
}

// runConfig runs an explicit configuration against a named workload.
func runConfig(p RunParams, cfg ssd.Config, workloadName string) (*ssd.Metrics, error) {
	w, err := p.workload(workloadName)
	if err != nil {
		return nil, err
	}
	cfg.Seed = p.Seed
	s, err := ssd.New(cfg, w)
	if err != nil {
		return nil, err
	}
	return s.Run(p.Requests)
}

// FormatChunkAblation renders the chunk-size sweep.
func FormatChunkAblation(points []ChunkAblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %8s %7s %9s %7s\n", "chunk", "tPRED", "floor", "MB/s", "uncor")
	for _, pt := range points {
		fmt.Fprintf(&b, "%5dKi %6.2fus %7.3f %9.0f %6.1f%%\n",
			pt.ChunkKiB, pt.TPredUS, pt.Floor, pt.MBps, 100*pt.UncorFrac)
	}
	return b.String()
}

// FormatBufferAblation renders the ECC buffer sweep.
func FormatBufferAblation(points []BufferAblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %9s %9s\n", "slots", "MB/s", "eccwait")
	for _, pt := range points {
		fmt.Fprintf(&b, "%6d %9.0f %8.1f%%\n", pt.Slots, pt.MBps, 100*pt.ECCWaitFrac)
	}
	return b.String()
}

// FormatAccuracyAblation renders the accuracy sweep.
func FormatAccuracyAblation(points []AccuracyAblationPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%7s %9s %7s\n", "floor", "MB/s", "uncor")
	for _, pt := range points {
		fmt.Fprintf(&b, "%7.3f %9.0f %6.1f%%\n", pt.Floor, pt.MBps, 100*pt.UncorFrac)
	}
	return b.String()
}
