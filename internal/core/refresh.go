package core

import (
	"fmt"
	"strings"

	"repro/internal/ssd"
	"repro/internal/trace"
)

// RefreshPoint is one refresh-horizon configuration: how the period
// of the background data refresh (footnote 3 of the paper: "Modern
// SSDs typically refresh stored data periodically") trades read
// performance against refresh write traffic.
type RefreshPoint struct {
	// HorizonDays is the refresh period: cold data is at most this
	// old.
	HorizonDays float64
	// MBps is the achieved bandwidth for the scheme under test.
	MBps float64
	// RetryRate is the fraction of page reads needing a retry.
	RetryRate float64
	// RefreshTaxMBps is the background write bandwidth the refresh
	// itself costs: the used capacity rewritten once per period.
	RefreshTaxMBps float64
	// CyclesPerYear is the P/E wear the refresh policy itself burns
	// on cold data (365/horizon) — the real cost of short horizons.
	CyclesPerYear float64
}

// AblateRefreshHorizon sweeps the refresh period for a scheme at the
// given wear. Short periods suppress retries but burn write bandwidth
// (and P/E cycles); long periods push cold data deep into the
// retry regime. The paper's 1-month choice sits between.
func AblateRefreshHorizon(p RunParams, scheme ssd.Scheme, pe int) ([]RefreshPoint, error) {
	spec, err := trace.ByName("Ali124")
	if err != nil {
		return nil, err
	}
	if p.FootprintPages > 0 {
		spec.FootprintPages = p.FootprintPages
	}
	usedBytes := float64(spec.FootprintPages) * 16 * 1024
	horizons := []float64{7, 14, 30, 60, 90}
	return gridMap(p, len(horizons), func(i int) (RefreshPoint, error) {
		horizon := horizons[i]
		s := spec
		s.MaxAgeDays = horizon
		w, err := trace.NewGenerator(s, p.Seed)
		if err != nil {
			return RefreshPoint{}, err
		}
		cfg := p.BuildConfig(scheme, pe)
		dev, err := ssd.New(cfg, w)
		if err != nil {
			return RefreshPoint{}, err
		}
		m, err := dev.Run(p.Requests)
		if err != nil {
			return RefreshPoint{}, err
		}
		return RefreshPoint{
			HorizonDays:    horizon,
			MBps:           m.Bandwidth(),
			RetryRate:      m.RetryRate(),
			RefreshTaxMBps: usedBytes / 1e6 / (horizon * 86400),
			CyclesPerYear:  365 / horizon,
		}, nil
	})
}

// FormatRefresh renders the refresh sweep.
func FormatRefresh(points []RefreshPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%9s %9s %8s %14s %12s\n", "horizon", "MB/s", "retry", "refresh tax", "P/E per yr")
	for _, pt := range points {
		fmt.Fprintf(&b, "%8.0fd %9.0f %7.1f%% %9.3f MB/s %12.1f\n",
			pt.HorizonDays, pt.MBps, 100*pt.RetryRate, pt.RefreshTaxMBps, pt.CyclesPerYear)
	}
	return b.String()
}
