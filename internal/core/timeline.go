package core

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/nand"
	"repro/internal/odear"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// fig7Workload is the §III-B3 scenario: a single 256-KiB sequential
// read over two dies of one channel where the first two multi-plane
// commands (A and B) hit retention-stressed pages.
type fig7Workload struct{}

func (fig7Workload) Next() trace.Request {
	return trace.Request{Op: trace.Read, LPN: 0, Pages: 16}
}

func (fig7Workload) InitialAgeDays(lpn int64) float64 {
	if lpn < 8 {
		return 25
	}
	return 0.02
}

// Fig7Config is the reduced two-die, one-channel SSD of the Fig. 7/8
// timelines (host link excluded, as the paper's timeline stops at the
// ECC engine).
func Fig7Config(scheme ssd.Scheme) ssd.Config {
	cfg := ssd.DefaultConfig(scheme, 1000)
	cfg.Geometry = nand.Geometry{
		Channels: 1, DiesPerChan: 2, PlanesPerDie: 4,
		BlocksPerPlane: 64, PagesPerBlock: 64, PageBytes: 16 * 1024,
	}
	cfg.Timing.THostPage = 0
	cfg.QueueDepth = 1
	return cfg
}

// TimelineResult is one Fig. 7/8 measurement.
type TimelineResult struct {
	Scheme  ssd.Scheme
	Total   sim.Time
	PaperUS float64 // the paper's reported total, for comparison
}

// Timelines reproduces the 256-KiB-read execution timelines of
// Figs. 7 and 8: SSDzero (252 us), SSDone (418 us) and RiF (292 us).
// The three scheme runs are independent, so they shard across the
// worker pool (0 means one per CPU, 1 runs sequentially).
func Timelines(workers int) ([]TimelineResult, error) {
	paper := map[ssd.Scheme]float64{ssd.Zero: 252, ssd.One: 418, ssd.RiF: 292}
	schemes := []ssd.Scheme{ssd.Zero, ssd.One, ssd.RiF}
	return fleet.Map(len(schemes), workers, func(i int) (TimelineResult, error) {
		scheme := schemes[i]
		s, err := ssd.New(Fig7Config(scheme), fig7Workload{})
		if err != nil {
			return TimelineResult{}, err
		}
		m, err := s.Run(1)
		if err != nil {
			return TimelineResult{}, err
		}
		return TimelineResult{Scheme: scheme, Total: m.Makespan, PaperUS: paper[scheme]}, nil
	})
}

// TimelineGantt runs the Fig. 7/8 scenario with span recording and
// renders the execution timeline as a text Gantt chart — the direct
// counterpart of the paper's Fig. 7/8 drawings. Lowercase glyphs mark
// retry work (A' re-reads), 'W' marks write traffic (none here).
func TimelineGantt(scheme ssd.Scheme) (string, error) {
	cfg := Fig7Config(scheme)
	cfg.RecordSpans = true
	s, err := ssd.New(cfg, fig7Workload{})
	if err != nil {
		return "", err
	}
	if _, err := s.Run(1); err != nil {
		return "", err
	}
	return ssd.RenderGantt(s.Spans(), 5), nil
}

// FormatTimelines renders the comparison.
func FormatTimelines(results []TimelineResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %12s %10s %8s\n", "scheme", "measured", "paper", "delta")
	for _, r := range results {
		us := r.Total.Microseconds()
		fmt.Fprintf(&b, "%-8s %10.1fus %8.0fus %+7.1f%%\n",
			r.Scheme, us, r.PaperUS, 100*(us-r.PaperUS)/r.PaperUS)
	}
	return b.String()
}

// Overhead reports the §VI-C hardware/energy figures plus a measured
// net energy delta for a 2K-P/E RiF run.
type Overhead struct {
	AreaMM2            float64
	PowerMW            float64
	PredictionEnergyNJ float64
	AvoidedXferNJ      float64
	Predictions        int64
	AvoidedTransfers   int64
	NetEnergyDeltaNJ   float64
}

// OverheadStudy runs a RiF simulation and evaluates the energy
// accounting of §VI-C.
func OverheadStudy(p RunParams) (*Overhead, error) {
	m, err := RunOne(p, ssd.RiF, "Ali124", 2000)
	if err != nil {
		return nil, err
	}
	return &Overhead{
		AreaMM2:            odear.AreaMM2,
		PowerMW:            odear.PowerMW,
		PredictionEnergyNJ: odear.PredictionEnergyNJ,
		AvoidedXferNJ:      odear.AvoidedTransferEnergyNJ,
		Predictions:        m.Predictions,
		AvoidedTransfers:   m.AvoidedTransfers,
		NetEnergyDeltaNJ:   m.EnergyDeltaNJ(),
	}, nil
}

// Format renders the overhead summary.
func (o *Overhead) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "RP module (130nm @100MHz, paper synthesis): %.3f mm^2, %.2f mW\n", o.AreaMM2, o.PowerMW)
	fmt.Fprintf(&b, "prediction energy: %.1f nJ; avoided uncorrectable transfer: %.0f nJ\n",
		o.PredictionEnergyNJ, o.AvoidedXferNJ)
	fmt.Fprintf(&b, "run: %d predictions, %d avoided transfers, net %.1f uJ\n",
		o.Predictions, o.AvoidedTransfers, o.NetEnergyDeltaNJ/1000)
	return b.String()
}
