package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/ssd"
)

// chaosParams sizes a fast sweep that still injects every class.
func chaosParams(workers int) RunParams {
	p := DefaultRunParams()
	p.Requests = 120
	p.Workers = workers
	return p
}

// TestChaosStudyWorkerCountInvariance pins the acceptance criterion:
// same seed + same fault config yields a byte-identical chaos manifest
// (wall time excluded) for any -workers value.
func TestChaosStudyWorkerCountInvariance(t *testing.T) {
	rates := []float64{0, 0.02}
	schemes := []ssd.Scheme{ssd.SWR, ssd.RiF}

	run := func(workers int) ([]ChaosPoint, []byte) {
		p := chaosParams(workers)
		p.Collect = obs.NewCollection()
		p.Tool, p.Experiment = "test", "chaos"
		pts, err := ChaosStudy(p, rates, schemes)
		if err != nil {
			t.Fatal(err)
		}
		runs := zeroWallTimes(p.Collect.Runs())
		blob, err := json.Marshal(runs)
		if err != nil {
			t.Fatal(err)
		}
		return pts, blob
	}

	seqPts, seqJSON := run(1)
	for _, workers := range []int{2, 4} {
		parPts, parJSON := run(workers)
		if !reflect.DeepEqual(seqPts, parPts) {
			t.Fatalf("workers=%d chaos points differ from sequential", workers)
		}
		if FormatChaos(seqPts) != FormatChaos(parPts) {
			t.Fatalf("workers=%d rendered report differs from sequential", workers)
		}
		if string(seqJSON) != string(parJSON) {
			t.Fatalf("workers=%d manifest JSON differs from sequential", workers)
		}
	}
}

// TestChaosRateZeroMatchesFaultFreeRun pins the other acceptance
// criterion: the sweep's control row is byte-identical to a plain
// fault-free simulation of the same cell.
func TestChaosRateZeroMatchesFaultFreeRun(t *testing.T) {
	p := chaosParams(1)
	pts, err := ChaosStudy(p, []float64{0}, []ssd.Scheme{ssd.RiF})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	m, err := RunOne(p, ssd.RiF, "Ali124", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MBps != m.Bandwidth() || pts[0].P99US != m.ReadLatencies.Percentile(99) {
		t.Fatalf("rate-0 chaos cell diverged from fault-free run: %+v vs %.2f MB/s", pts[0], m.Bandwidth())
	}
	if pts[0].Faults.Total() != 0 || pts[0].MediaErrPct != 0 {
		t.Fatalf("rate-0 cell reports fault activity: %+v", pts[0])
	}
}

// TestChaosStudyHonorsStop checks cancellation: once Stop fires, no
// new cells start, already-collected manifests survive and the study
// reports fleet.ErrStopped so callers can mark the flush partial.
func TestChaosStudyHonorsStop(t *testing.T) {
	p := chaosParams(1)
	p.Collect = obs.NewCollection()
	// Stop is polled exactly once per cell, so counting polls counts
	// cell starts: allow two cells, then cancel.
	cells := 0
	p.Stop = func() bool {
		fired := cells >= 2
		if !fired {
			cells++
		}
		return fired
	}
	pts, err := ChaosStudy(p, []float64{0, 0.01}, []ssd.Scheme{ssd.SWR, ssd.RiF})
	if !errors.Is(err, fleet.ErrStopped) {
		t.Fatalf("err = %v, want fleet.ErrStopped", err)
	}
	if len(pts) != 4 {
		t.Fatalf("partial results resized: %d slots", len(pts))
	}
	if got := p.Collect.Len(); got != 2 {
		t.Fatalf("collected %d manifests, want the 2 completed cells", got)
	}
	p.Collect.SetPartial(true)
	blob, err := json.Marshal(p.Collect)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(blob, &decoded); err != nil || !decoded.Partial {
		t.Fatalf("partial flag not serialized: %s", blob)
	}
}
