package core

import (
	"fmt"
	"strings"

	"repro/internal/faults"
	"repro/internal/ssd"
)

// The chaos sweep is the robustness counterpart of the Fig. 17
// bandwidth grid: instead of asking how fast each retry scheme is, it
// asks how gracefully each one degrades when the hardware misbehaves.
// Every fault class of internal/faults is injected at once, scaled
// from a single headline rate, and the study reports throughput, tail
// latency and the media-error fraction each scheme sustains.

// ChaosRates is the default headline fault-rate grid: a fault-free
// control plus three escalating chaos levels.
var ChaosRates = []float64{0, 0.001, 0.01, 0.05}

// ChaosSchemes are the schemes the sweep compares by default: the
// strongest baseline, the conventional retry ladder and RiF.
var ChaosSchemes = []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.RiF}

// ChaosMix derives a full fault mixture from one headline rate. The
// scaling keeps the mixture survivable at every grid point: transient
// glitches and mispredictions (self-healing) at the full rate, the
// destructive classes (stuck blocks, dead dies) well below it.
func ChaosMix(rate float64) faults.Config {
	return faults.Config{
		TransientSenseRate: rate,
		StuckBlockRate:     rate / 4,
		DieDropoutRate:     rate / 8,
		ChannelCorruptRate: rate / 2,
		MispredictRate:     rate,
		DecodeTimeoutRate:  rate / 2,
	}
}

// ChaosPoint is one (headline rate, scheme) cell of the sweep.
type ChaosPoint struct {
	Rate        float64
	Scheme      ssd.Scheme
	MBps        float64
	P99US       float64
	MediaErrPct float64 // % of requests completing with a media error
	Unrecovered int64   // pages still failing after the retry ladder
	Faults      ssd.FaultMetrics
}

// ChaosStudy runs the (rate x scheme) chaos grid on the read-heavy
// Ali124 workload at 2K P/E cycles. Each cell gets a rate-qualified
// experiment label so collected manifests sort identically for any
// worker count. Honors p.Stop: on cancellation the completed cells'
// manifests remain in p.Collect and fleet.ErrStopped is returned.
func ChaosStudy(p RunParams, rates []float64, schemes []ssd.Scheme) ([]ChaosPoint, error) {
	if len(rates) == 0 {
		rates = ChaosRates
	}
	if len(schemes) == 0 {
		schemes = ChaosSchemes
	}
	type cellKey struct {
		rate   float64
		scheme ssd.Scheme
	}
	var keys []cellKey
	for _, r := range rates {
		for _, s := range schemes {
			keys = append(keys, cellKey{r, s})
		}
	}
	return gridMap(p, len(keys), func(i int) (ChaosPoint, error) {
		k := keys[i]
		p2 := p
		p2.Faults = ChaosMix(k.rate)
		if p2.Experiment == "" {
			p2.Experiment = "chaos"
		}
		p2.Experiment = fmt.Sprintf("%s[rate=%g]", p2.Experiment, k.rate)
		m, err := RunOne(p2, k.scheme, "Ali124", 2000)
		if err != nil {
			return ChaosPoint{}, err
		}
		return ChaosPoint{
			Rate:        k.rate,
			Scheme:      k.scheme,
			MBps:        m.Bandwidth(),
			P99US:       m.ReadLatencies.Percentile(99),
			MediaErrPct: 100 * m.MediaErrorRate(),
			Unrecovered: m.UnrecoveredPages,
			Faults:      m.Faults,
		}, nil
	})
}

// FormatChaos renders the sweep, one row per cell.
func FormatChaos(points []ChaosPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %-8s %9s %9s %8s %8s %8s %7s\n",
		"rate", "scheme", "MB/s", "p99us", "mederr%", "faults", "unrec", "badblk")
	for _, pt := range points {
		fmt.Fprintf(&b, "%8g %-8s %9.0f %9.0f %8.2f %8d %8d %7d\n",
			pt.Rate, pt.Scheme, pt.MBps, pt.P99US, pt.MediaErrPct,
			pt.Faults.Total(), pt.Unrecovered, pt.Faults.GrownBadBlocks)
	}
	return b.String()
}
