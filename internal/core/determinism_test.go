package core

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// The grid studies shard cells across a worker pool; the contract is
// that the worker count is invisible in every output: the result
// structs, the rendered reports and the collected manifests must be
// byte-identical whatever -workers is. These tests pin that for the
// three figure studies and one ablation.

// detParams sizes a fast run that still exercises retries.
func detParams(workers int) RunParams {
	p := DefaultRunParams()
	p.Requests = 150
	p.Workers = workers
	return p
}

// zeroWallTimes strips the one intentionally non-reproducible
// manifest field (host-side wall time).
func zeroWallTimes(ms []obs.Manifest) []obs.Manifest {
	out := append([]obs.Manifest(nil), ms...)
	for i := range out {
		out[i].WallTimeS = 0
	}
	return out
}

func TestCompareSchemesWorkerCountInvariance(t *testing.T) {
	schemes := []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.RiF}
	workloads := []string{"Ali124", "Sys0"}
	pes := []int{1000, 2000}

	run := func(workers int) (*BandwidthTable, []obs.Manifest) {
		p := detParams(workers)
		p.Collect = obs.NewCollection()
		p.Tool, p.Experiment = "test", "fig17"
		tbl, err := CompareSchemes(p, schemes, workloads, pes)
		if err != nil {
			t.Fatal(err)
		}
		return tbl, p.Collect.Runs()
	}

	seqTbl, seqRuns := run(1)
	for _, workers := range []int{2, 4} {
		parTbl, parRuns := run(workers)
		if !reflect.DeepEqual(seqTbl, parTbl) {
			t.Fatalf("workers=%d table differs from sequential", workers)
		}
		seqTxt := seqTbl.Format(ssd.Sentinel, schemes, workloads)
		parTxt := parTbl.Format(ssd.Sentinel, schemes, workloads)
		if seqTxt != parTxt {
			t.Fatalf("workers=%d rendered report differs from sequential:\n%s\n--- vs ---\n%s",
				workers, seqTxt, parTxt)
		}
		if !reflect.DeepEqual(zeroWallTimes(seqRuns), zeroWallTimes(parRuns)) {
			t.Fatalf("workers=%d manifests differ from sequential", workers)
		}
	}
}

func TestFig18WorkerCountInvariance(t *testing.T) {
	schemes := []ssd.Scheme{ssd.Sentinel, ssd.RiF}
	run := func(workers int) []UsageCell {
		cells, err := Fig18(detParams(workers), schemes)
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("Fig18 cells differ between workers=1 and workers=4")
	}
	if FormatUsage(seq) != FormatUsage(par) {
		t.Fatal("Fig18 rendered report differs between workers=1 and workers=4")
	}
}

func TestFig19WorkerCountInvariance(t *testing.T) {
	schemes := []ssd.Scheme{ssd.Sentinel, ssd.RiF}
	run := func(workers int) []LatencyCurve {
		curves, err := Fig19(detParams(workers), schemes)
		if err != nil {
			t.Fatal(err)
		}
		return curves
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("Fig19 curves differ between workers=1 and workers=4")
	}
	if FormatLatency(seq) != FormatLatency(par) {
		t.Fatal("Fig19 rendered report differs between workers=1 and workers=4")
	}
}

func TestAblationWorkerCountInvariance(t *testing.T) {
	run := func(workers int) []BufferAblationPoint {
		pts, err := AblateECCBuffer(detParams(workers), ssd.One)
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	seq := run(1)
	par := run(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("ECC buffer ablation differs between workers=1 and workers=4")
	}
	if FormatBufferAblation(seq) != FormatBufferAblation(par) {
		t.Fatal("ablation rendered report differs between workers=1 and workers=4")
	}
}

func TestTimelinesWorkerCountInvariance(t *testing.T) {
	seq, err := Timelines(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Timelines(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("timelines differ between workers=1 and workers=4")
	}
}

// The full Fig. 17 grid is the acceptance scenario for -workers; keep
// a scaled-down version of the exact production call path (all
// schemes, all workloads) under the race detector in CI.
func TestFig17WorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheme/workload grid")
	}
	p1 := detParams(1)
	p1.Requests = 60
	seq, err := Fig17(p1)
	if err != nil {
		t.Fatal(err)
	}
	p4 := detParams(4)
	p4.Requests = 60
	par, err := Fig17(p4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("Fig17 table differs between workers=1 and workers=4")
	}
	if seq.Format(ssd.Sentinel, ssd.AllSchemes(), trace.Names()) !=
		par.Format(ssd.Sentinel, ssd.AllSchemes(), trace.Names()) {
		t.Fatal("Fig17 rendered report differs between workers=1 and workers=4")
	}
}
