package core

import (
	"fmt"
	"strings"

	"repro/internal/ssd"
	"repro/internal/trace"
)

// The drive-age sweep fast-forwards a simulated drive-year in
// wall-clock minutes: each epoch simulates a short observation window
// on a device seeded with the accumulated per-block wear and disturb
// state, then extrapolates the window's sense and erase rates across
// the whole epoch analytically. The simulated windows capture the
// behaviour aging changes — retry rates under power-law read disturb,
// read-reclaim migrations competing with GC for die time — while the
// closed-form fast-forward carries the state between epochs, so a
// year of drive life costs epochs × one short run instead of a year
// of simulated time.

const (
	// ageSweepEpochs splits the simulated drive-year into monthly
	// checkpoints.
	ageSweepEpochs = 12
	// ageSweepEpochDays is one mean Gregorian month, so 12 epochs are
	// exactly a year.
	ageSweepEpochDays = 30.4375
	// ageSweepDuty is the drive's assumed utilization: the closed-loop
	// window saturates the device, so extrapolating it across a month
	// at full rate would model a drive running flat out for a year.
	// The duty factor scales the window's sense/erase rates down to a
	// heavily used but not saturated enterprise drive; it is
	// calibrated so media errors stay at zero through mid-life and
	// emerge in the final months, with the drive degraded but
	// serviceable at year end. A side effect worth knowing: faster
	// schemes serve more reads per busy-hour at equal duty, so RiF
	// ages its media faster than the baselines it outperforms.
	ageSweepDuty = 0.01
)

// AgeSweepSchemes lists the schemes the drive-age figure compares:
// the off-chip baseline, Swift-Read, controller-side prediction, and
// full RiF.
func AgeSweepSchemes() []ssd.Scheme {
	return []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.RPOnly, ssd.RiF}
}

// AgePoint is one (scheme, drive age) checkpoint of the sweep.
type AgePoint struct {
	Scheme ssd.Scheme
	// AgeDays is the drive age at the end of the epoch.
	AgeDays float64
	// MBps is the bandwidth the aged device sustained in the epoch's
	// observation window.
	MBps float64
	// MediaErrRate is the fraction of requests that completed with an
	// uncorrectable page.
	MediaErrRate float64
	// RetryRate is the fraction of page reads needing a retry.
	RetryRate float64
	// Reclaims is the epoch's extrapolated read-reclaim count: blocks
	// whose accumulated senses crossed the reclaim threshold.
	Reclaims int64
	// AvgPE is the array's mean P/E wear (base cycles plus accumulated
	// erases) at the end of the epoch.
	AvgPE float64
}

// AgeSweep runs the drive-age study: for each scheme, epochs
// consecutive windows with the per-block state carried forward. The
// schemes shard across the worker grid; the epochs within a scheme are
// inherently sequential (each seeds from the last). Output is
// byte-identical at any worker count: every cell writes a pre-indexed
// slot and the fast-forward is pure integer arithmetic.
func AgeSweep(p RunParams, schemes []ssd.Scheme, epochs int, epochDays, duty float64, workloadName string) ([]AgePoint, error) {
	if epochs <= 0 {
		return nil, fmt.Errorf("core: age sweep epochs = %d", epochs)
	}
	if epochDays <= 0 || duty <= 0 || duty > 1 {
		return nil, fmt.Errorf("core: age sweep epochDays = %v, duty = %v", epochDays, duty)
	}
	spec, err := trace.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	if p.FootprintPages > 0 {
		spec.FootprintPages = p.FootprintPages
	}
	cells, err := gridMap(p, len(schemes), func(i int) ([]AgePoint, error) {
		return ageSweepScheme(p, schemes[i], spec, epochs, epochDays, duty)
	})
	if err != nil {
		return nil, err
	}
	var out []AgePoint
	for _, c := range cells {
		out = append(out, c...)
	}
	return out, nil
}

// ageSweepScheme ages one scheme through every epoch.
func ageSweepScheme(p RunParams, scheme ssd.Scheme, spec trace.Spec, epochs int, epochDays, duty float64) ([]AgePoint, error) {
	geo := p.BuildConfig(scheme, 0).Geometry
	nBlocks := geo.TotalBlocks()
	reads := make([]int64, nBlocks)  // residual disturb, carried across epochs
	erases := make([]int64, nBlocks) // accumulated wear, carried across epochs
	var refreshCarry float64         // fractional cold-region refresh periods
	pts := make([]AgePoint, 0, epochs)

	for e := 0; e < epochs; e++ {
		w, err := trace.NewGenerator(spec, p.Seed)
		if err != nil {
			return nil, err
		}
		// Base wear 0: the drive starts fresh and all aging flows
		// through the seeded per-block erase counters.
		cfg := p.BuildConfig(scheme, 0)
		dev, err := ssd.New(cfg, w)
		if err != nil {
			return nil, err
		}
		if err := dev.SeedBlockState(reads, erases); err != nil {
			return nil, err
		}
		m, err := dev.Run(p.Requests)
		if err != nil {
			return nil, err
		}
		st := dev.BlockState()

		// Extrapolate the observed window across the epoch: the window
		// saturates the device, so a month at that rate is scaled by
		// the duty factor. Gross senses (never reset by erases) are the
		// honest rate; the net counters reset on every reclaim.
		scale := epochDays * 86400 * duty / m.Makespan.Seconds()
		if scale < 1 {
			scale = 1
		}
		thr := cfg.ReadReclaimThreshold
		var reclaims int64
		gcScaled := make([]int64, nBlocks)
		for b := 0; b < nBlocks; b++ {
			senses := int64(float64(st.Senses[b]) * scale)
			// The window's GC wear, reclaim erases excluded: reclaim
			// wear is re-derived below from the gross sense rate, so
			// scaling the in-window reclaim erases too would count
			// them twice (and at ~1e6x, fatally).
			gcScaled[b] = int64(float64(st.Erases[b]-erases[b]-st.ReclaimErases[b]) * scale)
			total := reads[b] + senses
			if thr > 0 {
				// Analytic reclaim: each threshold crossing migrates
				// and erases the block; the remainder is the residual
				// disturb the next epoch starts from.
				reclaims += total / thr
				erases[b] += total / thr
				reads[b] = total % thr
			} else {
				reads[b] = total
			}
		}
		// A month of dynamic wear leveling spreads GC wear across each
		// plane's write region — the short window can't show that, so
		// the fast-forward levels it: the plane's scaled GC erases are
		// distributed evenly over its write-region blocks (remainder to
		// the lowest indices, deterministically).
		wb := geo.BlocksPerPlane / 2 // FTL write-region base
		for base := 0; base < nBlocks; base += geo.BlocksPerPlane {
			lo, hi := base+wb, base+geo.BlocksPerPlane
			var tot int64
			for b := lo; b < hi; b++ {
				tot += gcScaled[b]
			}
			per, rem := tot/int64(hi-lo), tot%int64(hi-lo)
			for b := lo; b < hi; b++ {
				erases[b] += per
				if int64(b-lo) < rem {
					erases[b]++
				}
			}
		}

		// The background refresh job (footnote 3) rewrites the cold
		// pre-fill region once per MaxAgeDays, burning one erase per
		// cold block per period; fractional periods carry over.
		refreshCarry += epochDays / spec.MaxAgeDays
		if whole := int64(refreshCarry); whole > 0 {
			refreshCarry -= float64(whole)
			for b := 0; b < nBlocks; b++ {
				if geo.BlockAddr(b).Block < geo.BlocksPerPlane/2 {
					erases[b] += whole
				}
			}
		}

		var peSum float64
		for b := 0; b < nBlocks; b++ {
			peSum += float64(cfg.PECycles) + float64(erases[b])
		}
		pts = append(pts, AgePoint{
			Scheme:       scheme,
			AgeDays:      float64(e+1) * epochDays,
			MBps:         m.Bandwidth(),
			MediaErrRate: m.MediaErrorRate(),
			RetryRate:    m.RetryRate(),
			Reclaims:     reclaims,
			AvgPE:        peSum / float64(nBlocks),
		})
	}
	return pts, nil
}

// FormatAgeSweep renders the sweep as a per-scheme table.
func FormatAgeSweep(points []AgePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %8s %10s %8s %10s %8s\n",
		"scheme", "age", "MB/s", "media-err", "retry", "reclaims", "avg P/E")
	var last ssd.Scheme = -1
	for _, pt := range points {
		if pt.Scheme != last && last != -1 {
			fmt.Fprintln(&b)
		}
		last = pt.Scheme
		fmt.Fprintf(&b, "%-8s %7.0fd %8.0f %9.3f%% %7.2f%% %10d %8.0f\n",
			pt.Scheme, pt.AgeDays, pt.MBps, 100*pt.MediaErrRate,
			100*pt.RetryRate, pt.Reclaims, pt.AvgPE)
	}
	return b.String()
}
