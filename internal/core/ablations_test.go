package core

import (
	"strings"
	"testing"

	"repro/internal/ssd"
)

func TestAblateChunkSize(t *testing.T) {
	pts, err := AblateChunkSize(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// Larger chunks: slower prediction but higher floor.
	for i := 1; i < len(pts); i++ {
		if pts[i].TPredUS <= pts[i-1].TPredUS || pts[i].Floor < pts[i-1].Floor {
			t.Fatalf("chunk configs not monotone: %+v", pts)
		}
	}
	// The 1-KiB point's extra mispredictions must show as more
	// uncorrectable traffic than the 4-KiB point.
	var u1, u4 float64
	for _, p := range pts {
		if p.ChunkKiB == 1 {
			u1 = p.UncorFrac
		}
		if p.ChunkKiB == 4 {
			u4 = p.UncorFrac
		}
	}
	if u1 <= u4 {
		t.Fatalf("1-KiB uncor %v not above 4-KiB %v", u1, u4)
	}
	if !strings.Contains(FormatChunkAblation(pts), "tPRED") {
		t.Fatal("format missing header")
	}
}

func TestAblateECCBuffer(t *testing.T) {
	pts, err := AblateECCBuffer(fastParams(), ssd.One)
	if err != nil {
		t.Fatal(err)
	}
	// ECC wait shrinks as the buffer deepens.
	first, last := pts[0], pts[len(pts)-1]
	if last.ECCWaitFrac >= first.ECCWaitFrac {
		t.Fatalf("deeper buffer did not cut eccwait: %+v", pts)
	}
	// But even a deep buffer cannot beat RiF: uncorrectable data
	// still crosses the channel (bandwidth stays well below the
	// RiF point measured elsewhere). Sanity: bandwidth monotone-ish.
	if last.MBps < first.MBps {
		t.Fatalf("deeper buffer reduced bandwidth: %+v", pts)
	}
	if !strings.Contains(FormatBufferAblation(pts), "eccwait") {
		t.Fatal("format missing header")
	}
}

func TestAblateAccuracy(t *testing.T) {
	pts, err := AblateAccuracy(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// Worse accuracy -> more doomed transfers; bandwidth must not
	// improve as the floor drops.
	lo, hi := pts[0], pts[len(pts)-1]
	if lo.UncorFrac <= hi.UncorFrac {
		t.Fatalf("uncor not increasing as accuracy drops: %+v", pts)
	}
	if lo.MBps > hi.MBps*1.02 {
		t.Fatalf("lower accuracy outperformed higher: %+v", pts)
	}
	if !strings.Contains(FormatAccuracyAblation(pts), "floor") {
		t.Fatal("format missing header")
	}
}

func TestAblateSecondCheck(t *testing.T) {
	res, err := AblateSecondCheck(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	// At 3K P/E some adjusted-VREF re-reads stay uncorrectable; the
	// second check must convert part of that doomed traffic into
	// in-die work.
	_, _, without, _ := res.Without.Channels.Fractions()
	_, _, with, _ := res.With.Channels.Fractions()
	if with > without {
		t.Fatalf("second check increased uncor traffic: %v -> %v", without, with)
	}
	if res.With.AvoidedTransfers < res.Without.AvoidedTransfers {
		t.Fatalf("second check avoided fewer transfers: %d -> %d",
			res.Without.AvoidedTransfers, res.With.AvoidedTransfers)
	}
}
