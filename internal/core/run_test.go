package core

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/faults"
)

func TestValidExperimentMatchesList(t *testing.T) {
	for _, name := range ValidExperiments() {
		if !ValidExperiment(name) {
			t.Errorf("listed experiment %q not valid", name)
		}
	}
	for _, name := range []string{"", "fig17", "Chaos", "6 ", "99"} {
		if ValidExperiment(name) {
			t.Errorf("%q accepted as an experiment", name)
		}
	}
}

// TestRunParamsValidate pins the shared numeric-input validation both
// front-ends (rifsim flags, rifserve job specs) rely on.
func TestRunParamsValidate(t *testing.T) {
	good := DefaultRunParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// Workers 0 means auto and is valid at this layer.
	auto := good
	auto.Workers = 0
	if err := auto.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*RunParams){
		"zero requests":      func(p *RunParams) { p.Requests = 0 },
		"negative requests":  func(p *RunParams) { p.Requests = -3 },
		"negative workers":   func(p *RunParams) { p.Workers = -1 },
		"negative footprint": func(p *RunParams) { p.FootprintPages = -1 },
		"bad fault rate":     func(p *RunParams) { p.Faults = faults.Config{StuckBlockRate: 2} },
	} {
		p := DefaultRunParams()
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunExperimentUnknownName(t *testing.T) {
	err := RunExperiment(io.Discard, "bogus", DefaultRunParams())
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment error", err)
	}
	if !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("error must list the valid experiments: %v", err)
	}
}

// TestRunExperimentWorkerIndependence is the replay guarantee the
// serving layer builds on: the report bytes depend only on the
// experiment name and the (requests, seed, faults) inputs — never on
// how many workers sharded the grid.
func TestRunExperimentWorkerIndependence(t *testing.T) {
	p := DefaultRunParams()
	p.Requests = 40
	p.Seed = 7
	var one, many bytes.Buffer
	p.Workers = 1
	if err := RunExperiment(&one, "chaos", p); err != nil {
		t.Fatal(err)
	}
	p.Workers = 4
	if err := RunExperiment(&many, "chaos", p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), many.Bytes()) {
		t.Fatalf("report bytes depend on worker count:\n--- 1 worker ---\n%s\n--- 4 workers ---\n%s",
			one.String(), many.String())
	}
}
