package core

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// tailParams sizes a fast open-loop sweep that still queues: a few
// hundred requests per cell at rates around the shrunk device's knee.
func tailParams(workers int) RunParams {
	p := DefaultRunParams()
	p.Requests = 300
	p.Workers = workers
	return p
}

func TestTailSweepWorkerCountInvariance(t *testing.T) {
	schemes := []ssd.Scheme{ssd.Sentinel, ssd.RiF}
	rates := []float64{20000, 40000}

	run := func(workers int) ([]TailPoint, []obs.Manifest) {
		p := tailParams(workers)
		p.Collect = obs.NewCollection()
		p.Tool, p.Experiment = "test", "tailsweep"
		pts, err := TailSweep(p, schemes, "Ali124", 2000, rates)
		if err != nil {
			t.Fatal(err)
		}
		return pts, p.Collect.Runs()
	}

	seqPts, seqRuns := run(1)
	for _, workers := range []int{2, 4} {
		parPts, parRuns := run(workers)
		if !reflect.DeepEqual(seqPts, parPts) {
			t.Fatalf("workers=%d tail points differ from sequential", workers)
		}
		if FormatTailSweep(seqPts) != FormatTailSweep(parPts) {
			t.Fatalf("workers=%d rendered report differs from sequential", workers)
		}
		if !reflect.DeepEqual(zeroWallTimes(seqRuns), zeroWallTimes(parRuns)) {
			t.Fatalf("workers=%d manifests differ from sequential", workers)
		}
	}
}

// The acceptance criterion for the tailsweep experiment is that the
// full report — table, chart and headline gain line — is byte-identical
// for any -workers value. Pin the exact production call path.
func TestTailSweepExperimentBytesWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full scheme/rate grid")
	}
	run := func(workers int) string {
		var buf bytes.Buffer
		p := tailParams(workers)
		p.Requests = 200
		if err := RunExperiment(&buf, "tailsweep", p); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := run(1)
	par := run(4)
	if seq != par {
		t.Fatalf("tailsweep report differs between workers=1 and workers=4:\n%s\n--- vs ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "RiF P99.99 cut vs SENC") {
		t.Fatalf("report missing headline gain line:\n%s", seq)
	}
}

func TestTailSweepRejectsBadRate(t *testing.T) {
	if _, err := TailSweep(tailParams(1), []ssd.Scheme{ssd.RiF}, "Ali124", 2000, []float64{10000, 0}); err == nil {
		t.Fatal("want error for non-positive rate")
	}
}

func TestTailGain(t *testing.T) {
	pts := []TailPoint{
		{Scheme: ssd.Sentinel, RateIOPS: 10000, P9999: 4000},
		{Scheme: ssd.RiF, RateIOPS: 10000, P9999: 1000},
		{Scheme: ssd.RiF, RateIOPS: 20000, P9999: 1200, HeldArrivals: 7},
		{Scheme: ssd.Sentinel, RateIOPS: 20000, P9999: 8000},
	}
	g, err := TailGain(pts, ssd.RiF, ssd.Sentinel, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.7499 || g > 0.7501 {
		t.Fatalf("gain = %v, want 0.75", g)
	}
	if _, err := TailGain(pts, ssd.RiF, ssd.Sentinel, 30000); err == nil {
		t.Fatal("want error for missing baseline rate")
	}
	if _, err := TailGain(pts, ssd.SWR, ssd.Sentinel, 10000); err == nil {
		t.Fatal("want error for missing scheme cell")
	}
	if _, err := TailGain([]TailPoint{
		{Scheme: ssd.Sentinel, RateIOPS: 10000, P9999: 0},
		{Scheme: ssd.RiF, RateIOPS: 10000, P9999: 1},
	}, ssd.RiF, ssd.Sentinel, 10000); err == nil {
		t.Fatal("want error for zero baseline")
	}
}

func TestBestSubSaturationGain(t *testing.T) {
	pts := []TailPoint{
		{Scheme: ssd.Sentinel, RateIOPS: 10000, P9999: 4000},
		{Scheme: ssd.RiF, RateIOPS: 10000, P9999: 1000},
		{Scheme: ssd.Sentinel, RateIOPS: 20000, P9999: 20000},
		// Best raw gain, but RiF is saturated here: must be skipped.
		{Scheme: ssd.RiF, RateIOPS: 20000, P9999: 1000, HeldArrivals: 9},
	}
	g, rate, err := BestSubSaturationGain(pts, ssd.RiF, ssd.Sentinel)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 10000 {
		t.Fatalf("rate = %v, want 10000 (saturated 20000 cell must be skipped)", rate)
	}
	if g < 0.7499 || g > 0.7501 {
		t.Fatalf("gain = %v, want 0.75", g)
	}
	if _, _, err := BestSubSaturationGain(pts, ssd.SWR, ssd.Sentinel); err == nil {
		t.Fatal("want error when scheme has no cells")
	}
}

// replayCSV synthesizes a small native-format trace in memory.
func replayCSV(t *testing.T, n int) []byte {
	t.Helper()
	spec, err := trace.ByName("Ali124")
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]trace.Request, n)
	for i := range reqs {
		reqs[i] = g.Next()
		reqs[i].At = sim.Time(i) * 20 * sim.Microsecond
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplaySweepWorkerCountInvariance(t *testing.T) {
	data := replayCSV(t, 250)
	run := func(workers int) []TailPoint {
		p := tailParams(workers)
		pts, err := ReplaySweep(p, ReplayParams{
			Open: func() (replay.Source, io.Closer, error) {
				s, err := trace.NewStream(bytes.NewReader(data), 4096, -1)
				return s, nil, err
			},
			Workload:       "mem.csv",
			Scheme:         ssd.RiF,
			PECycles:       2000,
			Rates:          []float64{20000, 50000},
			FootprintPages: p.FootprintPages,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	seq := run(1)
	par := run(2)
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("replay sweep differs between workers=1 and workers=2")
	}
	if len(seq) != 2 || seq[0].RateIOPS != 20000 || seq[1].RateIOPS != 50000 {
		t.Fatalf("unexpected sweep shape: %+v", seq)
	}
	for _, pt := range seq {
		if pt.Requests != 250 {
			t.Fatalf("cell replayed %d requests, want 250", pt.Requests)
		}
	}
}

func TestReplaySweepTraceTimestamps(t *testing.T) {
	data := replayCSV(t, 120)
	p := tailParams(1)
	pts, err := ReplaySweep(p, ReplayParams{
		Open: func() (replay.Source, io.Closer, error) {
			s, err := trace.NewStream(bytes.NewReader(data), 4096, -1)
			return s, nil, err
		},
		Workload:       "mem.csv",
		Scheme:         ssd.Sentinel,
		PECycles:       2000,
		FootprintPages: p.FootprintPages,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d cells, want 1 (no rate ladder)", len(pts))
	}
	if pts[0].RateIOPS != 0 {
		t.Fatalf("recorded rate %v for trace-timestamp replay, want 0", pts[0].RateIOPS)
	}
	if pts[0].Requests != 120 {
		t.Fatalf("replayed %d requests, want 120", pts[0].Requests)
	}
}

func TestReplaySweepNeedsOpen(t *testing.T) {
	if _, err := ReplaySweep(tailParams(1), ReplayParams{}); err == nil {
		t.Fatal("want error for missing Open hook")
	}
}
