package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ssd"
)

func TestAgeSweepWorkerCountInvariance(t *testing.T) {
	schemes := []ssd.Scheme{ssd.Sentinel, ssd.RiF}
	run := func(workers int) []AgePoint {
		p := detParams(workers)
		p.Requests = 120
		pts, err := AgeSweep(p, schemes, 3, 30, 0.01, "Ali124")
		if err != nil {
			t.Fatal(err)
		}
		return pts
	}
	seq := run(1)
	for _, workers := range []int{2, 4} {
		par := run(workers)
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("age sweep differs between workers=1 and workers=%d", workers)
		}
		if FormatAgeSweep(seq) != FormatAgeSweep(par) {
			t.Fatalf("rendered sweep differs between workers=1 and workers=%d", workers)
		}
	}
}

func TestAgeSweepValidation(t *testing.T) {
	p := detParams(1)
	cases := []struct {
		name            string
		epochs          int
		epochDays, duty float64
		workload        string
	}{
		{"zero epochs", 0, 30, 0.01, "Ali124"},
		{"zero epoch days", 3, 0, 0.01, "Ali124"},
		{"zero duty", 3, 30, 0, "Ali124"},
		{"duty above one", 3, 30, 1.5, "Ali124"},
		{"unknown workload", 3, 30, 0.01, "nope"},
	}
	for _, c := range cases {
		if _, err := AgeSweep(p, AgeSweepSchemes(), c.epochs, c.epochDays, c.duty, c.workload); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

// TestAgeSweepAgesTheDrive checks the fast-forward actually ages: P/E
// wear accumulates monotonically across epochs, each epoch extrapolates
// reclaims, and the year-end retry rate is clearly above the young
// drive's — the disturb carried across epochs must matter.
func TestAgeSweepAgesTheDrive(t *testing.T) {
	p := detParams(1)
	p.Requests = 200
	pts, err := AgeSweep(p, []ssd.Scheme{ssd.Sentinel}, 4, 30.4375, 0.02, "Ali124")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points for 4 epochs", len(pts))
	}
	for i, pt := range pts {
		if pt.Reclaims <= 0 {
			t.Errorf("epoch %d extrapolated no reclaims", i)
		}
		if pt.MBps <= 0 {
			t.Errorf("epoch %d bandwidth %v", i, pt.MBps)
		}
		if i > 0 {
			if pt.AgeDays <= pts[i-1].AgeDays {
				t.Errorf("age not increasing at epoch %d", i)
			}
			if pt.AvgPE < pts[i-1].AvgPE {
				t.Errorf("wear decreased at epoch %d: %v -> %v", i, pts[i-1].AvgPE, pt.AvgPE)
			}
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.AvgPE <= first.AvgPE {
		t.Fatalf("a simulated season added no wear: %v -> %v", first.AvgPE, last.AvgPE)
	}
	if last.RetryRate <= first.RetryRate {
		t.Fatalf("aged drive retries no more than young one: %v -> %v",
			first.RetryRate, last.RetryRate)
	}
}

// TestAgeSweepReportDeterministic pins the full dispatcher path the
// cache and the server rely on: two RunExperiment calls with the same
// params render byte-identical agesweep reports.
func TestAgeSweepReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4-scheme drive-year")
	}
	render := func(workers int) string {
		var b strings.Builder
		p := detParams(workers)
		p.Requests = 120
		if err := RunExperiment(&b, "agesweep", p); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(1) != render(4) {
		t.Fatal("agesweep report differs between workers=1 and workers=4")
	}
}
