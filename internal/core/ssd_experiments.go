package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ssd"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PaperPECycles are the three wear states the paper evaluates.
var PaperPECycles = []int{0, 1000, 2000}

// BandwidthCell is one (scheme, workload, P/E) bandwidth measurement.
type BandwidthCell struct {
	Scheme   ssd.Scheme
	Workload string
	PECycles int
	MBps     float64
}

// BandwidthTable is the Fig. 6 / Fig. 17 result grid.
type BandwidthTable struct {
	Cells []BandwidthCell
}

// Get finds a cell (0 when absent).
func (t *BandwidthTable) Get(s ssd.Scheme, workload string, pe int) float64 {
	for _, c := range t.Cells {
		if c.Scheme == s && c.Workload == workload && c.PECycles == pe {
			return c.MBps
		}
	}
	return 0
}

// Ratio reports scheme s's bandwidth relative to base under the same
// (workload, P/E). A missing or zero baseline cell is reported as an
// error rather than silently producing +Inf or NaN.
func (t *BandwidthTable) Ratio(s, base ssd.Scheme, workload string, pe int) (float64, error) {
	ref := t.Get(base, workload, pe)
	if ref <= 0 {
		return 0, fmt.Errorf("core: no %v baseline bandwidth for workload %q at %d P/E cycles", base, workload, pe)
	}
	return t.Get(s, workload, pe) / ref, nil
}

// NormalizedTo reports every cell's bandwidth relative to the given
// baseline scheme under the same (workload, P/E), as Fig. 17 is
// normalized to SENC.
func (t *BandwidthTable) NormalizedTo(base ssd.Scheme) map[ssd.Scheme]map[int][]float64 {
	out := map[ssd.Scheme]map[int][]float64{}
	for _, c := range t.Cells {
		b := t.Get(base, c.Workload, c.PECycles)
		if b <= 0 {
			continue
		}
		if out[c.Scheme] == nil {
			out[c.Scheme] = map[int][]float64{}
		}
		out[c.Scheme][c.PECycles] = append(out[c.Scheme][c.PECycles], c.MBps/b)
	}
	return out
}

// GeoMeanGain reports the geometric-mean bandwidth of scheme s over
// base at the given P/E across workloads, minus one (e.g. the paper's
// "+72.1% over SENC at 2K").
func (t *BandwidthTable) GeoMeanGain(s, base ssd.Scheme, pe int) float64 {
	norm := t.NormalizedTo(base)
	var ratios []float64
	for _, r := range norm[s][pe] {
		if r > 0 { // a zero-bandwidth cell would poison the geomean
			ratios = append(ratios, r)
		}
	}
	if len(ratios) == 0 {
		return 0
	}
	return stats.GeoMean(ratios) - 1
}

// Format renders the table in the paper's layout: one block per P/E
// count, workloads as columns, normalized to the base scheme.
func (t *BandwidthTable) Format(base ssd.Scheme, schemes []ssd.Scheme, workloads []string) string {
	var b strings.Builder
	pes := map[int]bool{}
	for _, c := range t.Cells {
		pes[c.PECycles] = true
	}
	var peList []int
	for pe := range pes {
		peList = append(peList, pe)
	}
	sort.Ints(peList)
	for _, pe := range peList {
		fmt.Fprintf(&b, "== %dK P/E cycles (bandwidth normalized to %v) ==\n", pe/1000, base)
		fmt.Fprintf(&b, "%-8s", "scheme")
		for _, w := range workloads {
			fmt.Fprintf(&b, "%9s", w)
		}
		fmt.Fprintf(&b, "%9s\n", "geomean")
		for _, s := range schemes {
			fmt.Fprintf(&b, "%-8s", s)
			var ratios []float64
			for _, w := range workloads {
				r, err := t.Ratio(s, base, w, pe)
				if err != nil || r <= 0 {
					// Missing baseline or empty cell: mark it rather
					// than feeding 0/Inf into the geomean.
					fmt.Fprintf(&b, "%9s", "n/a")
					continue
				}
				ratios = append(ratios, r)
				fmt.Fprintf(&b, "%9.2f", r)
			}
			if len(ratios) == len(workloads) {
				fmt.Fprintf(&b, "%9.2f\n", stats.GeoMean(ratios))
			} else {
				fmt.Fprintf(&b, "%9s\n", "n/a")
			}
		}
	}
	return b.String()
}

// CompareSchemes runs the (schemes x workloads x peCycles) grid — the
// engine behind Figs. 6 and 17 — sharded across p.Workers workers.
// Each cell lands in its pre-assigned slot, so the table is identical
// whatever the scheduling.
func CompareSchemes(p RunParams, schemes []ssd.Scheme, workloads []string, peCycles []int) (*BandwidthTable, error) {
	type cellKey struct {
		s  ssd.Scheme
		w  string
		pe int
	}
	var keys []cellKey
	for _, pe := range peCycles {
		for _, w := range workloads {
			for _, s := range schemes {
				keys = append(keys, cellKey{s, w, pe})
			}
		}
	}
	cells, err := gridMap(p, len(keys), func(i int) (BandwidthCell, error) {
		k := keys[i]
		m, err := RunOne(p, k.s, k.w, k.pe)
		if err != nil {
			return BandwidthCell{}, err
		}
		return BandwidthCell{Scheme: k.s, Workload: k.w, PECycles: k.pe, MBps: m.Bandwidth()}, nil
	})
	if err != nil {
		return nil, err
	}
	return &BandwidthTable{Cells: cells}, nil
}

// Fig6 compares SSDone against SSDzero on the four workloads of the
// motivation study.
func Fig6(p RunParams) (*BandwidthTable, error) {
	return CompareSchemes(p,
		[]ssd.Scheme{ssd.Zero, ssd.One},
		[]string{"Ali121", "Ali124", "Sys0", "Sys1"},
		PaperPECycles)
}

// Fig17 runs the full evaluation grid: five retry schemes plus the
// two reference points over all eight workloads and three P/E counts.
func Fig17(p RunParams) (*BandwidthTable, error) {
	return CompareSchemes(p, ssd.AllSchemes(), trace.Names(), PaperPECycles)
}

// UsageCell is one channel-usage breakdown (Fig. 18).
type UsageCell struct {
	Scheme   ssd.Scheme
	Workload string
	PECycles int
	Idle     float64
	Cor      float64
	Uncor    float64
	ECCWait  float64
}

// Fig18 measures the channel usage breakdown for the two most
// read-intensive workloads across schemes and P/E counts.
func Fig18(p RunParams, schemes []ssd.Scheme) ([]UsageCell, error) {
	type cellKey struct {
		w  string
		pe int
		s  ssd.Scheme
	}
	var keys []cellKey
	for _, w := range []string{"Ali121", "Ali124"} {
		for _, pe := range PaperPECycles {
			for _, s := range schemes {
				keys = append(keys, cellKey{w, pe, s})
			}
		}
	}
	return gridMap(p, len(keys), func(i int) (UsageCell, error) {
		k := keys[i]
		m, err := RunOne(p, k.s, k.w, k.pe)
		if err != nil {
			return UsageCell{}, err
		}
		idle, cor, uncor, wait := m.Channels.Fractions()
		return UsageCell{
			Scheme: k.s, Workload: k.w, PECycles: k.pe,
			Idle: idle, Cor: cor, Uncor: uncor, ECCWait: wait,
		}, nil
	})
}

// FormatUsage renders Fig. 18-style rows.
func FormatUsage(cells []UsageCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-8s %5s %6s %6s %6s %8s\n",
		"trace", "scheme", "P/E", "IDLE", "COR", "UNCOR", "ECCWAIT")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-8s %-8s %5d %6.2f %6.2f %6.2f %8.2f\n",
			c.Workload, c.Scheme, c.PECycles, c.Idle, c.Cor, c.Uncor, c.ECCWait)
	}
	return b.String()
}

// LatencyCurve is one scheme's read-latency distribution (Fig. 19).
type LatencyCurve struct {
	Scheme   ssd.Scheme
	PECycles int
	// CDF maps latency (us) to cumulative fraction.
	CDF []stats.CDFPoint
	// Percentiles of interest, in us.
	P50, P99, P999, P9999 float64
}

// Fig19 collects read-latency CDFs for Ali124 across schemes and P/E
// counts.
func Fig19(p RunParams, schemes []ssd.Scheme) ([]LatencyCurve, error) {
	type cellKey struct {
		pe int
		s  ssd.Scheme
	}
	var keys []cellKey
	for _, pe := range PaperPECycles {
		for _, s := range schemes {
			keys = append(keys, cellKey{pe, s})
		}
	}
	return gridMap(p, len(keys), func(i int) (LatencyCurve, error) {
		k := keys[i]
		m, err := RunOne(p, k.s, "Ali124", k.pe)
		if err != nil {
			return LatencyCurve{}, err
		}
		return LatencyCurve{
			Scheme:   k.s,
			PECycles: k.pe,
			CDF:      m.ReadLatencies.CDF(64),
			P50:      m.ReadLatencies.Percentile(50),
			P99:      m.ReadLatencies.Percentile(99),
			P999:     m.ReadLatencies.Percentile(99.9),
			P9999:    m.ReadLatencies.Percentile(99.99),
		}, nil
	})
}

// FormatLatency renders the tail-latency table.
func FormatLatency(curves []LatencyCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %5s %9s %9s %9s %9s\n", "scheme", "P/E", "p50us", "p99us", "p99.9us", "p99.99us")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-8s %5d %9.0f %9.0f %9.0f %9.0f\n",
			c.Scheme, c.PECycles, c.P50, c.P99, c.P999, c.P9999)
	}
	return b.String()
}
