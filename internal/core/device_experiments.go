package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/nand"
)

// RetentionCell is one (P/E, day) cell of the Fig. 4 heat map: the
// proportion of pages whose RBER first exceeds the ECC capability on
// that retention day.
type RetentionCell struct {
	PECycles   int
	Day        int
	Proportion float64
}

// Fig4Params sizes the device characterization sweeps.
type Fig4Params struct {
	Seed    uint64
	Blocks  int // blocks sampled per P/E condition
	MaxDays int
}

// DefaultFig4Params returns the characterization sizing.
func DefaultFig4Params() Fig4Params {
	return Fig4Params{Seed: 1, Blocks: 300, MaxDays: 40}
}

// Fig4 reproduces the retention-until-retry distributions: for each
// P/E count it bins the first-crossing retention day over a block
// population and all three page types.
func Fig4(p Fig4Params, peCycles []int) []RetentionCell {
	if len(peCycles) == 0 {
		peCycles = []int{0, 100, 200, 300, 500, 1000}
	}
	m := nand.NewDefaultModel(p.Seed)
	var out []RetentionCell
	types := []nand.PageType{nand.LSB, nand.CSB, nand.MSB}
	for _, pe := range peCycles {
		counts := make([]int, p.MaxDays+2) // last bin: never within horizon
		total := 0
		for b := 0; b < p.Blocks; b++ {
			for _, pt := range types {
				d := m.RetentionUntilRetry(b, pt, pe, float64(p.MaxDays))
				bin := int(math.Ceil(d))
				if d >= float64(p.MaxDays) {
					bin = p.MaxDays + 1
				}
				counts[bin]++
				total++
			}
		}
		for day := 0; day <= p.MaxDays+1; day++ {
			if counts[day] == 0 {
				continue
			}
			out = append(out, RetentionCell{
				PECycles:   pe,
				Day:        day,
				Proportion: float64(counts[day]) / float64(total),
			})
		}
	}
	return out
}

// OnsetDay reports the earliest crossing day for a P/E count in a
// Fig. 4 result (the paper's 17/14/10/8-day frontier).
func OnsetDay(cells []RetentionCell, pe int) int {
	onset := -1
	for _, c := range cells {
		if c.PECycles != pe {
			continue
		}
		if onset < 0 || c.Day < onset {
			onset = c.Day
		}
	}
	return onset
}

// FormatFig4 renders the distribution as one row per P/E count.
func FormatFig4(cells []RetentionCell, maxDays int) string {
	byPE := map[int]map[int]float64{}
	var pes []int
	for _, c := range cells {
		if byPE[c.PECycles] == nil {
			byPE[c.PECycles] = map[int]float64{}
			pes = append(pes, c.PECycles)
		}
		byPE[c.PECycles][c.Day] = c.Proportion
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%6s | proportion of pages crossing the ECC capability per retention day\n", "P/E")
	for _, pe := range pes {
		fmt.Fprintf(&b, "%6d |", pe)
		for d := 0; d <= maxDays; d++ {
			v := byPE[pe][d]
			switch {
			case v == 0:
				b.WriteByte('.')
			case v < 0.02:
				b.WriteByte('-')
			case v < 0.05:
				b.WriteByte('+')
			default:
				b.WriteByte('#')
			}
		}
		fmt.Fprintf(&b, "  onset=%dd\n", OnsetDay(cells, pe))
	}
	return b.String()
}

// SimilarityPoint is one Fig. 12 cell: the worst chunk RBER spread
// observed over a page population for one chunk size and condition.
type SimilarityPoint struct {
	ChunkKiB      int
	PECycles      int
	RetentionDays float64
	// MaxSpread is max over pages of (RBERmax-RBERmin)/RBERmin among
	// the page's chunks.
	MaxSpread float64
}

// Fig12 reproduces the intra-page chunk RBER similarity study for
// 4/2/1-KiB chunks of a 16-KiB page under increasing stress.
func Fig12(seed uint64, pages int) []SimilarityPoint {
	if pages <= 0 {
		pages = 2000
	}
	m := nand.NewDefaultModel(seed)
	var out []SimilarityPoint
	for _, chunkKiB := range []int{4, 2, 1} {
		chunks := 16 / chunkKiB
		for _, pe := range []int{0, 1000, 2000} {
			for _, days := range []float64{0, 1, 3, 7, 14, 21, 28} {
				worst := 0.0
				for pg := 0; pg < pages; pg++ {
					base := m.PageRBER(pg%64, nand.CSB, pe, days, 0, nand.DefaultVref)
					if base <= 0 {
						continue
					}
					lo, hi := math.Inf(1), 0.0
					for c := 0; c < chunks; c++ {
						r := m.ChunkRBER(base, uint64(pg), c, chunks)
						lo = math.Min(lo, r)
						hi = math.Max(hi, r)
					}
					if lo > 0 {
						if s := (hi - lo) / lo; s > worst {
							worst = s
						}
					}
				}
				out = append(out, SimilarityPoint{
					ChunkKiB: chunkKiB, PECycles: pe, RetentionDays: days, MaxSpread: worst,
				})
			}
		}
	}
	return out
}

// MaxSpreadFor reports the worst spread for a chunk size across all
// conditions (the paper's 4.5% @4 KiB, 13.5% @1 KiB headline).
func MaxSpreadFor(points []SimilarityPoint, chunkKiB int) float64 {
	worst := 0.0
	for _, p := range points {
		if p.ChunkKiB == chunkKiB && p.MaxSpread > worst {
			worst = p.MaxSpread
		}
	}
	return worst
}

// FormatFig12 renders the similarity study.
func FormatFig12(points []SimilarityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %6s %10s %12s\n", "chunk", "P/E", "days", "max spread")
	for _, p := range points {
		fmt.Fprintf(&b, "%5dK %6d %10.0f %11.1f%%\n",
			p.ChunkKiB, p.PECycles, p.RetentionDays, 100*p.MaxSpread)
	}
	return b.String()
}
