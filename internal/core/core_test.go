package core

import (
	"strings"
	"testing"

	"repro/internal/nand"
	"repro/internal/ssd"
)

// fastParams shrinks everything for test speed.
func fastParams() RunParams {
	p := DefaultRunParams()
	p.Requests = 200
	return p
}

func fastCode() CodeParams {
	p := DefaultCodeParams()
	p.Circulant = 128
	p.Samples = 40
	return p
}

func TestRunOne(t *testing.T) {
	m, err := RunOne(fastParams(), ssd.RiF, "Ali124", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestsCompleted != 200 || m.Bandwidth() <= 0 {
		t.Fatalf("bad metrics: %v", m)
	}
}

func TestRunOneRejectsBadInput(t *testing.T) {
	p := fastParams()
	if _, err := RunOne(p, ssd.RiF, "NoSuchTrace", 0); err == nil {
		t.Fatal("unknown workload accepted")
	}
	p.Requests = 0
	if _, err := RunOne(p, ssd.RiF, "Ali2", 0); err == nil {
		t.Fatal("zero requests accepted")
	}
}

func TestCompareSchemesGrid(t *testing.T) {
	tbl, err := CompareSchemes(fastParams(),
		[]ssd.Scheme{ssd.Zero, ssd.Sentinel, ssd.RiF},
		[]string{"Ali124", "Sys0"}, []int{0, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 3*2*2 {
		t.Fatalf("%d cells", len(tbl.Cells))
	}
	for _, c := range tbl.Cells {
		if c.MBps <= 0 {
			t.Fatalf("cell %+v empty", c)
		}
	}
	// RiF must beat Sentinel at 2K on a read-heavy trace.
	if gain := tbl.GeoMeanGain(ssd.RiF, ssd.Sentinel, 2000); gain < 0.2 {
		t.Fatalf("RiF over SENC at 2K = %v", gain)
	}
	out := tbl.Format(ssd.Sentinel, []ssd.Scheme{ssd.Zero, ssd.Sentinel, ssd.RiF}, []string{"Ali124", "Sys0"})
	if !strings.Contains(out, "SENC") || !strings.Contains(out, "geomean") {
		t.Fatalf("format output malformed:\n%s", out)
	}
}

func TestNormalizedToBaselineIsOne(t *testing.T) {
	tbl, err := CompareSchemes(fastParams(), []ssd.Scheme{ssd.Sentinel, ssd.RiF}, []string{"Sys1"}, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	norm := tbl.NormalizedTo(ssd.Sentinel)
	for _, r := range norm[ssd.Sentinel][1000] {
		if r != 1 {
			t.Fatalf("baseline normalized to %v", r)
		}
	}
}

func TestFig3CurveShape(t *testing.T) {
	pts := Fig3(fastCode(), []float64{0.003, 0.0085, 0.012})
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].FailureProb > 0.1 {
		t.Fatalf("failure prob at low RBER = %v", pts[0].FailureProb)
	}
	if pts[2].FailureProb < 0.9 {
		t.Fatalf("failure prob above capability = %v", pts[2].FailureProb)
	}
	if pts[0].AvgIters >= pts[1].AvgIters {
		t.Fatal("iterations did not grow with RBER")
	}
	if !strings.Contains(FormatFig3(pts), "P(failure)") {
		t.Fatal("format missing header")
	}
}

func TestFig10Correlation(t *testing.T) {
	pts, rhoFull, rhoPruned := Fig10(fastCode(), []float64{0.002, 0.0085, 0.014})
	if rhoFull <= rhoPruned || rhoPruned <= 0 {
		t.Fatalf("rhoS full=%d pruned=%d", rhoFull, rhoPruned)
	}
	// Weight grows monotonically with RBER (Fig. 10's correlation).
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgFullWeight <= pts[i-1].AvgFullWeight ||
			pts[i].AvgPrunedWeight <= pts[i-1].AvgPrunedWeight {
			t.Fatalf("syndrome weight not monotone: %+v", pts)
		}
	}
	// rhoS sits near the measured weight at the capability point.
	mid := pts[1]
	if d := mid.AvgPrunedWeight - float64(rhoPruned); d > 10 || d < -10 {
		t.Fatalf("pruned weight %v at capability vs rhoS %d", mid.AvgPrunedWeight, rhoPruned)
	}
}

func TestRPAccuracyHeadlines(t *testing.T) {
	p := fastCode()
	p.Samples = 60
	rbers := []float64{0.004, 0.007, 0.0085, 0.011, 0.015, 0.021, 0.027, 0.033}
	full := RPAccuracy(p, rbers, false)
	approx := RPAccuracy(p, rbers, true)
	mFull := MeanAccuracyAbove(full, nand.ECCCapabilityRBER)
	mApprox := MeanAccuracyAbove(approx, nand.ECCCapabilityRBER)
	// Paper: 99.1% (full) and 98.7% (approximate).
	if mFull < 0.93 {
		t.Fatalf("full accuracy above capability = %v", mFull)
	}
	if mApprox < 0.92 {
		t.Fatalf("approx accuracy above capability = %v", mApprox)
	}
	if !strings.Contains(FormatAccuracy(full), "accuracy") {
		t.Fatal("format missing header")
	}
}

func TestFig4Distribution(t *testing.T) {
	p := DefaultFig4Params()
	p.Blocks = 60
	cells := Fig4(p, []int{0, 500, 1000})
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	// Proportions per P/E sum to ~1.
	sums := map[int]float64{}
	for _, c := range cells {
		sums[c.PECycles] += c.Proportion
	}
	for pe, s := range sums {
		if s < 0.99 || s > 1.01 {
			t.Fatalf("pe=%d proportions sum to %v", pe, s)
		}
	}
	// Onset shrinks with wear.
	if !(OnsetDay(cells, 0) > OnsetDay(cells, 500) && OnsetDay(cells, 500) > OnsetDay(cells, 1000)) {
		t.Fatalf("onset not shrinking: %d %d %d",
			OnsetDay(cells, 0), OnsetDay(cells, 500), OnsetDay(cells, 1000))
	}
	if !strings.Contains(FormatFig4(cells, p.MaxDays), "onset") {
		t.Fatal("format missing onset")
	}
}

func TestFig12Similarity(t *testing.T) {
	pts := Fig12(1, 300)
	s4 := MaxSpreadFor(pts, 4)
	s1 := MaxSpreadFor(pts, 1)
	if s4 <= 0 || s1 <= s4 {
		t.Fatalf("spreads: 4K=%v 1K=%v", s4, s1)
	}
	// Paper bounds: <=4.5% at 4 KiB, <=13.5% at 1 KiB (we allow 2x).
	if s4 > 0.09 || s1 > 0.27 {
		t.Fatalf("spreads exceed paper scale: 4K=%v 1K=%v", s4, s1)
	}
	if !strings.Contains(FormatFig12(pts), "max spread") {
		t.Fatal("format missing header")
	}
}

func TestTimelinesMatchPaper(t *testing.T) {
	results, err := Timelines(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d timelines", len(results))
	}
	for _, r := range results {
		us := r.Total.Microseconds()
		if us < r.PaperUS*0.95 || us > r.PaperUS*1.05 {
			t.Errorf("%v: %vus vs paper %vus", r.Scheme, us, r.PaperUS)
		}
	}
	if !strings.Contains(FormatTimelines(results), "paper") {
		t.Fatal("format missing header")
	}
}

func TestSoftGainStudy(t *testing.T) {
	p := fastCode()
	p.Samples = 24
	points, softCap := SoftGainStudy(p, []float64{0.0085, 0.012})
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	for _, pt := range points {
		if pt.SoftFail > pt.HardFail {
			t.Fatalf("soft decoding worse than hard at %v: %+v", pt.RBER, pt)
		}
	}
	if softCap <= 0.0085 {
		t.Fatalf("soft capability %v not above hard", softCap)
	}
	if !strings.Contains(FormatSoftGain(points, softCap), "soft P(fail)") {
		t.Fatal("format missing header")
	}
}

func TestOverheadStudy(t *testing.T) {
	o, err := OverheadStudy(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if o.AreaMM2 != 0.012 || o.PowerMW != 1.28 {
		t.Fatal("synthesis constants wrong")
	}
	if o.Predictions == 0 || o.AvoidedTransfers == 0 {
		t.Fatalf("no prediction activity: %+v", o)
	}
	if o.NetEnergyDeltaNJ >= 0 {
		t.Fatalf("net energy %v nJ, want saving at 2K", o.NetEnergyDeltaNJ)
	}
	if !strings.Contains(o.Format(), "mm^2") {
		t.Fatal("format missing area")
	}
}
