package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/replay"
	"repro/internal/ssd"
)

// TailPoint is one (scheme, arrival intensity) cell of the open-loop
// tail sweep: the latency percentiles a load generator would report
// at that offered rate.
type TailPoint struct {
	Scheme   ssd.Scheme
	RateIOPS float64
	Requests int64

	// Read-latency percentiles (µs) from the replay's quantile sketch
	// (±stats.SketchAlpha relative error).
	P50, P99, P999, P9999 float64

	MBps float64
	// PeakInFlight and HeldArrivals locate the cell relative to the
	// scheme's saturation point: a saturated cell pins the ring and
	// holds arrivals.
	PeakInFlight int
	HeldArrivals int64
}

// Saturated reports whether the offered rate exceeded what the scheme
// could serve: the ring filled and arrivals had to wait for
// admission.
func (t TailPoint) Saturated() bool { return t.HeldArrivals > 0 }

// TailSweepSchemes is the default scheme panel: the paper's retry
// baselines against RiF (Figs. 14/17 tail comparisons).
func TailSweepSchemes() []ssd.Scheme {
	return []ssd.Scheme{ssd.Sentinel, ssd.SWR, ssd.SWRPlus, ssd.RPOnly, ssd.RiF}
}

// DefaultTailRates is the intensity ladder (IOPS) of the tailsweep
// experiment, spanning from lightly loaded to past the weakest
// scheme's saturation point on the shrunk Ali124 device at 2K P/E.
func DefaultTailRates() []float64 {
	return []float64{10000, 20000, 30000, 40000, 50000}
}

// TailSweep replays the workload open-loop at every (scheme, rate)
// combination — Poisson arrivals, bounded in-flight ring, streaming
// latency sketch — sharded across p.Workers workers. Each cell owns
// its workload generator and arrival process seeded from p.Seed, and
// results land in pre-indexed slots, so the sweep is byte-identical
// for every worker count.
func TailSweep(p RunParams, schemes []ssd.Scheme, workloadName string, pe int, rates []float64) ([]TailPoint, error) {
	if len(rates) == 0 {
		rates = DefaultTailRates()
	}
	for _, r := range rates {
		if r <= 0 {
			return nil, fmt.Errorf("core: arrival rate %v IOPS; want > 0", r)
		}
	}
	type cellKey struct {
		s    ssd.Scheme
		rate float64
	}
	var keys []cellKey
	for _, s := range schemes {
		for _, r := range rates {
			keys = append(keys, cellKey{s, r})
		}
	}
	return gridMap(p, len(keys), func(i int) (TailPoint, error) {
		k := keys[i]
		w, err := p.workload(workloadName)
		if err != nil {
			return TailPoint{}, err
		}
		arr, err := replay.NewPoisson(k.rate, p.Seed)
		if err != nil {
			return TailPoint{}, err
		}
		cfg := p.BuildConfig(k.s, pe)
		cfg.OpenLoop = true
		cfg.Obs = p.Obs
		cfg.Trace = p.Trace
		var reg *obs.Registry
		if p.Collect != nil {
			reg = obs.NewRegistry()
			cfg.Obs = reg
		}
		start := time.Now() //riflint:allow wallclock -- host-side runtime for the manifest, never feeds the sim
		res, err := replay.Run(replay.FromWorkload(w, int64(p.Requests)), replay.Options{
			Config:   cfg,
			Arrivals: arr,
		})
		if err != nil {
			return TailPoint{}, fmt.Errorf("core: tailsweep %v @ %.0f IOPS: %w", k.s, k.rate, err)
		}
		if p.Collect != nil {
			p.Collect.Add(obs.Manifest{
				Tool:       p.Tool,
				Experiment: p.Experiment,
				Scheme:     k.s.String(),
				Workload:   workloadName,
				PECycles:   pe,
				Seed:       p.Seed,
				Requests:   p.Requests,
				RateIOPS:   k.rate,
				Config:     cfg,
				SimTimeNS:  int64(res.Metrics.Makespan),
				//riflint:allow wallclock -- host-side runtime for the manifest, never feeds the sim
				WallTimeS:  time.Since(start).Seconds(),
				BandwidthM: res.Metrics.Bandwidth(),
				Metrics:    reg.Snapshot(),
			})
		}
		return TailPoint{
			Scheme:       k.s,
			RateIOPS:     k.rate,
			Requests:     res.Requests,
			P50:          res.Latency.Percentile(50),
			P99:          res.Latency.Percentile(99),
			P999:         res.Latency.Percentile(99.9),
			P9999:        res.Latency.Percentile(99.99),
			MBps:         res.Metrics.Bandwidth(),
			PeakInFlight: res.Metrics.PeakInFlight,
			HeldArrivals: res.Metrics.HeldArrivals,
		}, nil
	})
}

// ReplayParams configures an external-trace replay sweep.
type ReplayParams struct {
	// Open returns a fresh request stream (and an optional closer) for
	// each sweep cell, so parallel cells never share a reader. A
	// single-cell sweep calls it exactly once, which is what makes
	// stdin usable there.
	Open func() (replay.Source, io.Closer, error)

	// Workload labels manifests and reports (typically the trace file
	// name).
	Workload string

	Scheme   ssd.Scheme
	PECycles int

	// Rates is the Poisson intensity ladder (IOPS); empty replays the
	// trace's own timestamps scaled by Speed.
	Rates []float64
	// Speed compresses the trace's timestamps when Rates is empty
	// (0 = 1 = as recorded).
	Speed float64

	// AgeDays is the uniform initial retention age of cold data.
	AgeDays float64
	// MaxRequests bounds each cell's replay; 0 replays the whole
	// trace.
	MaxRequests int64
	// MaxInFlight bounds the open-loop ring (0 =
	// replay.DefaultMaxInFlight).
	MaxInFlight int
	// FootprintPages compacts the trace's addresses into the simulated
	// footprint (0 keeps addresses as recorded — only safe for traces
	// already sized to the device).
	FootprintPages int64
}

// ReplaySweep replays an external trace through the open-loop engine
// at each arrival rate (or once at its recorded timestamps) and
// returns the tail points. Results land in pre-indexed slots, so the
// sweep is byte-identical for every p.Workers value.
func ReplaySweep(p RunParams, rp ReplayParams) ([]TailPoint, error) {
	if rp.Open == nil {
		return nil, fmt.Errorf("core: replay sweep needs an Open hook")
	}
	speed := rp.Speed
	if speed == 0 {
		speed = 1
	}
	n := len(rp.Rates)
	if n == 0 {
		n = 1
	}
	return gridMap(p, n, func(i int) (TailPoint, error) {
		var (
			arr  replay.Arrivals
			rate float64
			err  error
		)
		if len(rp.Rates) > 0 {
			rate = rp.Rates[i]
			arr, err = replay.NewPoisson(rate, p.Seed)
		} else {
			arr, err = replay.NewTraceScale(speed)
		}
		if err != nil {
			return TailPoint{}, err
		}
		src, closer, err := rp.Open()
		if err != nil {
			return TailPoint{}, err
		}
		if closer != nil {
			defer closer.Close()
		}
		cfg := p.BuildConfig(rp.Scheme, rp.PECycles)
		cfg.OpenLoop = true
		cfg.MaxInFlight = rp.MaxInFlight
		cfg.Obs = p.Obs
		cfg.Trace = p.Trace
		var reg *obs.Registry
		if p.Collect != nil {
			reg = obs.NewRegistry()
			cfg.Obs = reg
		}
		start := time.Now() //riflint:allow wallclock -- host-side runtime for the manifest, never feeds the sim
		res, err := replay.Run(src, replay.Options{
			Config:         cfg,
			Arrivals:       arr,
			MaxRequests:    rp.MaxRequests,
			AgeDays:        rp.AgeDays,
			FootprintPages: rp.FootprintPages,
		})
		if err != nil {
			return TailPoint{}, fmt.Errorf("core: replay %q: %w", rp.Workload, err)
		}
		if p.Collect != nil {
			p.Collect.Add(obs.Manifest{
				Tool:       p.Tool,
				Experiment: p.Experiment,
				Scheme:     rp.Scheme.String(),
				Workload:   rp.Workload,
				PECycles:   rp.PECycles,
				Seed:       p.Seed,
				Requests:   int(res.Requests),
				RateIOPS:   rate,
				Config:     cfg,
				SimTimeNS:  int64(res.Metrics.Makespan),
				//riflint:allow wallclock -- host-side runtime for the manifest, never feeds the sim
				WallTimeS:  time.Since(start).Seconds(),
				BandwidthM: res.Metrics.Bandwidth(),
				Metrics:    reg.Snapshot(),
			})
		}
		return TailPoint{
			Scheme:       rp.Scheme,
			RateIOPS:     rate,
			Requests:     res.Requests,
			P50:          res.Latency.Percentile(50),
			P99:          res.Latency.Percentile(99),
			P999:         res.Latency.Percentile(99.9),
			P9999:        res.Latency.Percentile(99.99),
			MBps:         res.Metrics.Bandwidth(),
			PeakInFlight: res.Metrics.PeakInFlight,
			HeldArrivals: res.Metrics.HeldArrivals,
		}, nil
	})
}

// TailGain reports scheme s's P99.99 reduction versus base at the
// given rate, as a fraction (0.6 = 60% lower tail). An error marks a
// missing or degenerate baseline cell.
func TailGain(pts []TailPoint, s, base ssd.Scheme, rate float64) (float64, error) {
	find := func(sc ssd.Scheme) (TailPoint, bool) {
		for _, p := range pts {
			if p.Scheme == sc && p.RateIOPS == rate {
				return p, true
			}
		}
		return TailPoint{}, false
	}
	b, ok := find(base)
	if !ok || b.P9999 <= 0 {
		return 0, fmt.Errorf("core: no %v baseline at %.0f IOPS", base, rate)
	}
	v, ok := find(s)
	if !ok {
		return 0, fmt.Errorf("core: no %v cell at %.0f IOPS", s, rate)
	}
	return 1 - v.P9999/b.P9999, nil
}

// BestSubSaturationGain scans the ladder for the largest P99.99 cut
// of s versus base at a rate where s itself is not saturated — the
// regime the paper's open-loop tail comparisons report — and returns
// the gain and its rate. Rates where the baseline is missing are
// skipped; zero cells are reported as an error.
func BestSubSaturationGain(pts []TailPoint, s, base ssd.Scheme) (gain, rate float64, err error) {
	found := false
	for _, p := range pts {
		if p.Scheme != s || p.Saturated() {
			continue
		}
		g, gerr := TailGain(pts, s, base, p.RateIOPS)
		if gerr != nil {
			continue
		}
		if !found || g > gain {
			gain, rate, found = g, p.RateIOPS, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("core: no sub-saturation %v cell with a %v baseline", s, base)
	}
	return gain, rate, nil
}

// FormatTailSweep renders the sweep as a rate-major table plus a
// P99.99-vs-intensity chart per scheme.
func FormatTailSweep(pts []TailPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %9s %9s %9s %9s %9s %8s %6s %10s\n",
		"scheme", "rateIOPS", "p50us", "p99us", "p99.9us", "p99.99us", "MB/s", "peak", "held")
	for _, p := range pts {
		sat := ""
		if p.Saturated() {
			sat = " (sat)"
		}
		fmt.Fprintf(&b, "%-8s %9.0f %9.0f %9.0f %9.0f %9.0f %8.0f %6d %9d%s\n",
			p.Scheme, p.RateIOPS, p.P50, p.P99, p.P999, p.P9999,
			p.MBps, p.PeakInFlight, p.HeldArrivals, sat)
	}
	series := map[ssd.Scheme]*plot.Series{}
	var order []ssd.Scheme
	for _, p := range pts {
		s, ok := series[p.Scheme]
		if !ok {
			s = &plot.Series{Name: p.Scheme.String()}
			series[p.Scheme] = s
			order = append(order, p.Scheme)
		}
		s.Points = append(s.Points, plot.XY{X: p.RateIOPS / 1000, Y: p.P9999 / 1000})
	}
	var list []plot.Series
	for _, sc := range order {
		list = append(list, *series[sc])
	}
	if len(list) > 0 {
		b.WriteString("\n")
		b.WriteString(plot.Chart("P99.99 read latency (ms) vs arrival rate (kIOPS)", list, 64, 14))
	}
	return b.String()
}
