// Package core orchestrates the RiF reproduction experiments: it
// wires the QC-LDPC machinery, the NAND reliability model, the ODEAR
// engine and the SSD simulator into the studies behind every table
// and figure of the paper, and exposes the library-level entry points
// the cmd/ tools, examples and benchmarks share.
package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// RunParams sizes an SSD-level experiment run.
type RunParams struct {
	// Requests is the number of host requests per simulation run.
	Requests int
	// Seed drives all random streams.
	Seed uint64
	// FootprintPages overrides the workloads' logical footprint
	// (0 keeps the spec default).
	FootprintPages int64
	// Shrink reduces the per-plane block/page counts to keep runs
	// fast; the channel/die topology (what the experiments measure)
	// is unchanged. Zero means the full Table I array.
	Shrink bool
	// Workers bounds the worker pool the grid studies shard their
	// independent cells across: 0 means one per CPU, 1 restores fully
	// sequential runs. Results are written into pre-indexed slots, so
	// the output is byte-identical for every value.
	Workers int
	// Faults configures deterministic fault injection for every
	// simulation these params run. The zero value injects nothing and
	// leaves runs byte-identical to the pre-fault simulator.
	Faults faults.Config
	// Stop, when non-nil, is polled before each grid cell starts; once
	// it reports true no new cells begin and the study returns
	// fleet.ErrStopped. Cells already running finish normally, so
	// manifests collected so far stay valid (flushed marked partial).
	Stop func() bool
	// Pool, when non-nil, is the shared work-stealing scheduler the
	// grid studies submit their cells to instead of spinning up a
	// private pool of Workers — this is how a long-running service
	// interleaves many jobs' cells across one bounded worker set.
	// Results stay byte-identical either way (pre-indexed slots), so
	// Pool never affects output, only scheduling.
	Pool *fleet.Scheduler

	// Obs, when non-nil, is attached to every simulation these params
	// run (instruments are concurrency-safe, so grid cells may share
	// it). Ignored when Collect is set: each collected run then gets
	// its own private registry so manifests stay per-run.
	Obs *obs.Registry
	// Trace, when non-nil, receives sim-time spans from every run.
	// Sharing one tracer across a parallel grid interleaves runs;
	// meaningful mostly for single-simulation experiments.
	Trace *obs.Tracer
	// Collect, when non-nil, receives one Manifest per completed
	// simulation (safe for the parallel grids).
	Collect *obs.Collection
	// Tool and Experiment label collected manifests ("rifsim",
	// "fig17", ...).
	Tool       string
	Experiment string
}

// DefaultRunParams returns the sizing used by the cmd tools.
func DefaultRunParams() RunParams {
	return RunParams{Requests: 3000, Seed: 1, FootprintPages: 1 << 17, Shrink: true}
}

// BuildConfig derives the simulator configuration these params run a
// (scheme, P/E) cell under. Exported so the result cache can fold the
// complete derived configuration — defaults included — into its
// content address: a change to ssd.DefaultConfig changes the bytes
// here and therefore the cache key.
func (p RunParams) BuildConfig(scheme ssd.Scheme, pe int) ssd.Config {
	cfg := ssd.DefaultConfig(scheme, pe)
	cfg.Seed = p.Seed
	cfg.Faults = p.Faults
	if p.Shrink {
		cfg.Geometry.BlocksPerPlane = 256
		cfg.Geometry.PagesPerBlock = 128
	}
	return cfg
}

// gridMap shards an n-cell study grid: over p.Pool when the caller
// supplies a shared scheduler, otherwise over a private pool of
// p.Workers. Every grid study routes through here so the two paths
// cannot drift.
func gridMap[T any](p RunParams, n int, fn func(i int) (T, error)) ([]T, error) {
	if p.Pool != nil {
		return fleet.MapOn(p.Pool, n, p.Stop, fn)
	}
	return fleet.MapStop(n, p.Workers, p.Stop, fn)
}

// workload instantiates a Table II workload generator.
func (p RunParams) workload(name string) (*trace.Generator, error) {
	spec, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	if p.FootprintPages > 0 {
		spec.FootprintPages = p.FootprintPages
	}
	return trace.NewGenerator(spec, p.Seed)
}

// RunOne simulates a single (scheme, workload, P/E) cell and returns
// its metrics. When p.Collect is set, the run is also recorded as a
// manifest carrying its full configuration and registry snapshot.
func RunOne(p RunParams, scheme ssd.Scheme, workloadName string, pe int) (*ssd.Metrics, error) {
	if p.Requests <= 0 {
		return nil, fmt.Errorf("core: requests = %d", p.Requests)
	}
	w, err := p.workload(workloadName)
	if err != nil {
		return nil, err
	}
	cfg := p.BuildConfig(scheme, pe)
	cfg.Obs = p.Obs
	cfg.Trace = p.Trace
	var reg *obs.Registry
	if p.Collect != nil {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	s, err := ssd.New(cfg, w)
	if err != nil {
		return nil, err
	}
	start := time.Now() //riflint:allow wallclock -- host-side runtime for the manifest, never feeds the sim
	m, err := s.Run(p.Requests)
	if err != nil {
		return nil, err
	}
	if p.Collect != nil {
		p.Collect.Add(obs.Manifest{
			Tool:       p.Tool,
			Experiment: p.Experiment,
			Scheme:     scheme.String(),
			Workload:   workloadName,
			PECycles:   pe,
			Seed:       p.Seed,
			Requests:   p.Requests,
			Config:     cfg,
			SimTimeNS:  int64(m.Makespan),
			//riflint:allow wallclock -- host-side runtime for the manifest, never feeds the sim
			WallTimeS:  time.Since(start).Seconds(),
			BandwidthM: m.Bandwidth(),
			Metrics:    reg.Snapshot(),
		})
	}
	return m, nil
}
