// Package core orchestrates the RiF reproduction experiments: it
// wires the QC-LDPC machinery, the NAND reliability model, the ODEAR
// engine and the SSD simulator into the studies behind every table
// and figure of the paper, and exposes the library-level entry points
// the cmd/ tools, examples and benchmarks share.
package core

import (
	"fmt"

	"repro/internal/ssd"
	"repro/internal/trace"
)

// RunParams sizes an SSD-level experiment run.
type RunParams struct {
	// Requests is the number of host requests per simulation run.
	Requests int
	// Seed drives all random streams.
	Seed uint64
	// FootprintPages overrides the workloads' logical footprint
	// (0 keeps the spec default).
	FootprintPages int64
	// Shrink reduces the per-plane block/page counts to keep runs
	// fast; the channel/die topology (what the experiments measure)
	// is unchanged. Zero means the full Table I array.
	Shrink bool
}

// DefaultRunParams returns the sizing used by the cmd tools.
func DefaultRunParams() RunParams {
	return RunParams{Requests: 3000, Seed: 1, FootprintPages: 1 << 17, Shrink: true}
}

// buildConfig derives the simulator configuration.
func (p RunParams) buildConfig(scheme ssd.Scheme, pe int) ssd.Config {
	cfg := ssd.DefaultConfig(scheme, pe)
	cfg.Seed = p.Seed
	if p.Shrink {
		cfg.Geometry.BlocksPerPlane = 256
		cfg.Geometry.PagesPerBlock = 128
	}
	return cfg
}

// workload instantiates a Table II workload generator.
func (p RunParams) workload(name string) (*trace.Generator, error) {
	spec, err := trace.ByName(name)
	if err != nil {
		return nil, err
	}
	if p.FootprintPages > 0 {
		spec.FootprintPages = p.FootprintPages
	}
	return trace.NewGenerator(spec, p.Seed)
}

// RunOne simulates a single (scheme, workload, P/E) cell and returns
// its metrics.
func RunOne(p RunParams, scheme ssd.Scheme, workloadName string, pe int) (*ssd.Metrics, error) {
	if p.Requests <= 0 {
		return nil, fmt.Errorf("core: requests = %d", p.Requests)
	}
	w, err := p.workload(workloadName)
	if err != nil {
		return nil, err
	}
	s, err := ssd.New(p.buildConfig(scheme, pe), w)
	if err != nil {
		return nil, err
	}
	return s.Run(p.Requests)
}
