package core

import (
	"strings"
	"testing"

	"repro/internal/ssd"
)

func TestAblateRefreshHorizon(t *testing.T) {
	pts, err := AblateRefreshHorizon(fastParams(), ssd.One, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// Retry rate grows with the horizon; refresh tax shrinks.
	for i := 1; i < len(pts); i++ {
		if pts[i].RetryRate < pts[i-1].RetryRate {
			t.Fatalf("retry rate not monotone: %+v", pts)
		}
		if pts[i].RefreshTaxMBps >= pts[i-1].RefreshTaxMBps {
			t.Fatalf("refresh tax not decreasing: %+v", pts)
		}
	}
	// Short-horizon runs must outperform long-horizon ones on an
	// off-chip scheme (fewer retries).
	if pts[0].MBps <= pts[len(pts)-1].MBps {
		t.Fatalf("7-day horizon not faster than 90-day: %+v", pts)
	}
	if !strings.Contains(FormatRefresh(pts), "refresh tax") {
		t.Fatal("format missing header")
	}
}

func TestRefreshHorizonMattersLessForRiF(t *testing.T) {
	// RiF hides most of the retry cost, so its bandwidth should be
	// far less sensitive to the refresh period than SSDone's.
	one, err := AblateRefreshHorizon(fastParams(), ssd.One, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := AblateRefreshHorizon(fastParams(), ssd.RiF, 1000)
	if err != nil {
		t.Fatal(err)
	}
	oneSwing := one[0].MBps/one[len(one)-1].MBps - 1
	rfSwing := rf[0].MBps/rf[len(rf)-1].MBps - 1
	if rfSwing >= oneSwing {
		t.Fatalf("RiF sensitivity %v not below SSDone %v", rfSwing, oneSwing)
	}
}

func TestMultiTenantStudy(t *testing.T) {
	results, err := MultiTenantStudy(fastParams(), []ssd.Scheme{ssd.Sentinel, ssd.RiF}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0].Tenants) != 2 {
		t.Fatalf("shape: %+v", results)
	}
	// RiF must protect the read tenant's tail better than SENC.
	var sencTail, rifTail float64
	for _, r := range results {
		for _, tn := range r.Tenants {
			if tn.Workload != "Ali124" {
				continue
			}
			if r.Scheme == ssd.Sentinel {
				sencTail = tn.P99US
			} else {
				rifTail = tn.P99US
			}
		}
	}
	if rifTail >= sencTail {
		t.Fatalf("RiF tenant p99 %v not below SENC %v", rifTail, sencTail)
	}
	if !strings.Contains(FormatMultiTenant(results), "tenant") {
		t.Fatal("format missing header")
	}
}
