package core

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"

	"repro/internal/ldpc"
	"repro/internal/nand"
	"repro/internal/odear"
)

// CodeParams sizes the QC-LDPC used by the code-level studies. The
// default keeps the paper's 4x36 block shape with a reduced circulant
// so sweeps are fast; set Circulant to ldpc.PaperCirculant (1024) for
// the full 4-KiB codeword.
type CodeParams struct {
	BlockRows int
	BlockCols int
	Circulant int
	Seed      uint64
	// Samples is the number of test codewords per RBER point.
	Samples int
}

// DefaultCodeParams returns the fast-sweep configuration.
func DefaultCodeParams() CodeParams {
	return CodeParams{
		BlockRows: ldpc.PaperBlockRows,
		BlockCols: ldpc.PaperBlockCols,
		Circulant: 256,
		Seed:      7,
		Samples:   200,
	}
}

func (p CodeParams) build() *ldpc.Code {
	return ldpc.NewCode(p.BlockRows, p.BlockCols, p.Circulant, p.Seed)
}

// CapabilityPoint is one RBER point of the Fig. 3 study.
type CapabilityPoint struct {
	RBER        float64
	FailureProb float64
	AvgIters    float64
}

// Fig3 measures the decoding failure probability and the average
// iteration count of the QC-LDPC decoder across an RBER sweep, using
// the real min-sum decoder on real noisy codewords.
func Fig3(p CodeParams, rbers []float64) []CapabilityPoint {
	if len(rbers) == 0 {
		rbers = []float64{0.004, 0.005, 0.006, 0.007, 0.008, 0.0085, 0.009, 0.010}
	}
	code := p.build()
	out := make([]CapabilityPoint, len(rbers))
	var wg sync.WaitGroup
	for i, r := range rbers {
		wg.Add(1)
		go func(i int, r float64) {
			defer wg.Done()
			dec := ldpc.NewMinSumDecoder(code, 0)
			rng := rand.New(rand.NewPCG(p.Seed, uint64(i)+100))
			fails, iters := 0, 0
			k := int(r*float64(code.N()) + 0.5)
			for s := 0; s < p.Samples; s++ {
				cw := code.Encode(ldpc.RandomBits(code.K(), rng))
				res := dec.Decode(ldpc.FlipExact(cw, k, rng))
				if !res.OK {
					fails++
				}
				iters += res.Iterations
			}
			out[i] = CapabilityPoint{
				RBER:        r,
				FailureProb: float64(fails) / float64(p.Samples),
				AvgIters:    float64(iters) / float64(p.Samples),
			}
		}(i, r)
	}
	wg.Wait()
	return out
}

// FormatFig3 renders the Fig. 3 sweep.
func FormatFig3(points []CapabilityPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %10s\n", "RBER", "P(failure)", "avg iters")
	for _, pt := range points {
		fmt.Fprintf(&b, "%10.4f %12.4f %10.1f\n", pt.RBER, pt.FailureProb, pt.AvgIters)
	}
	return b.String()
}

// CorrelationPoint is one RBER point of the Fig. 10 study.
type CorrelationPoint struct {
	RBER            float64
	AvgFullWeight   float64
	AvgPrunedWeight float64
}

// Fig10 measures the RBER-to-syndrome-weight correlation that
// justifies the RP heuristic, and returns the calibrated threshold
// rhoS alongside the sweep.
func Fig10(p CodeParams, rbers []float64) (points []CorrelationPoint, rhoSFull, rhoSPruned int) {
	if len(rbers) == 0 {
		for r := 0.001; r <= 0.016001; r += 0.001 {
			rbers = append(rbers, r)
		}
	}
	code := p.build()
	points = make([]CorrelationPoint, len(rbers))
	var wg sync.WaitGroup
	for i, r := range rbers {
		wg.Add(1)
		go func(i int, r float64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(p.Seed, uint64(i)+200))
			fullSum, prunedSum := 0, 0
			k := int(r*float64(code.N()) + 0.5)
			for s := 0; s < p.Samples; s++ {
				cw := ldpc.FlipExact(code.Encode(ldpc.RandomBits(code.K(), rng)), k, rng)
				fullSum += code.SyndromeWeight(cw)
				prunedSum += code.FirstRowSyndromeWeight(cw)
			}
			points[i] = CorrelationPoint{
				RBER:            r,
				AvgFullWeight:   float64(fullSum) / float64(p.Samples),
				AvgPrunedWeight: float64(prunedSum) / float64(p.Samples),
			}
		}(i, r)
	}
	wg.Wait()
	return points,
		odear.RhoS(code, nand.ECCCapabilityRBER, false),
		odear.RhoS(code, nand.ECCCapabilityRBER, true)
}

// AccuracyPoint is one RBER point of the Fig. 11 / Fig. 14 studies.
type AccuracyPoint struct {
	RBER     float64
	Accuracy float64
}

// RPAccuracy measures the agreement between the RP prediction and the
// real LDPC decode outcome across an RBER sweep. approximate=false is
// Fig. 11 (full syndrome weight); approximate=true is Fig. 14
// (chunk-based prediction with syndrome pruning).
func RPAccuracy(p CodeParams, rbers []float64, approximate bool) []AccuracyPoint {
	if len(rbers) == 0 {
		for r := 0.003; r <= 0.033001; r += 0.002 {
			rbers = append(rbers, r)
		}
	}
	code := p.build()
	rp := odear.NewRP(code, nand.ECCCapabilityRBER, approximate)
	out := make([]AccuracyPoint, len(rbers))
	var wg sync.WaitGroup
	for i, r := range rbers {
		wg.Add(1)
		go func(i int, r float64) {
			defer wg.Done()
			dec := ldpc.NewMinSumDecoder(code, 0)
			rng := rand.New(rand.NewPCG(p.Seed, uint64(i)+300))
			agree := 0
			k := int(r*float64(code.N()) + 0.5)
			for s := 0; s < p.Samples; s++ {
				cw := ldpc.FlipExact(code.Encode(ldpc.RandomBits(code.K(), rng)), k, rng)
				predictRetry := rp.Predict(cw)
				actualFail := !dec.Decode(cw).OK
				if predictRetry == actualFail {
					agree++
				}
			}
			out[i] = AccuracyPoint{RBER: r, Accuracy: float64(agree) / float64(p.Samples)}
		}(i, r)
	}
	wg.Wait()
	return out
}

// MeanAccuracyAbove averages the measured accuracy over points whose
// RBER exceeds the capability — the paper's headline 99.1% (full) and
// 98.7% (approximate) numbers.
func MeanAccuracyAbove(points []AccuracyPoint, capability float64) float64 {
	total, n := 0.0, 0
	for _, pt := range points {
		if pt.RBER > capability {
			total += pt.Accuracy
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// SoftGainStudy measures the capability extension soft-decision
// decoding buys over hard-decision decoding — the modern last-resort
// retry the related-work section situates RiF against. It returns the
// paired failure curves plus the estimated soft-decoding capability.
func SoftGainStudy(p CodeParams, rbers []float64) (points []ldpc.SoftGainPoint, softCap float64) {
	if len(rbers) == 0 {
		rbers = []float64{0.006, 0.0085, 0.010, 0.012, 0.015, 0.02}
	}
	code := p.build()
	points = ldpc.MeasureSoftGain(code, rbers, p.Samples, p.Seed)
	softCap = ldpc.SoftCapability(code, p.Samples/4+4, p.Seed)
	return points, softCap
}

// FormatSoftGain renders the soft-vs-hard comparison.
func FormatSoftGain(points []ldpc.SoftGainPoint, softCap float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %12s %12s %11s %11s\n", "RBER", "hard P(fail)", "soft P(fail)", "hard iters", "soft iters")
	for _, pt := range points {
		fmt.Fprintf(&b, "%10.4f %12.3f %12.3f %11.1f %11.1f\n",
			pt.RBER, pt.HardFail, pt.SoftFail, pt.HardIters, pt.SoftIters)
	}
	fmt.Fprintf(&b, "estimated soft-decoding capability: %.4f (hard: %.4f)\n",
		softCap, nand.ECCCapabilityRBER)
	return b.String()
}

// FormatAccuracy renders an accuracy sweep.
func FormatAccuracy(points []AccuracyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %10s\n", "RBER", "accuracy")
	for _, pt := range points {
		fmt.Fprintf(&b, "%10.4f %10.3f\n", pt.RBER, pt.Accuracy)
	}
	return b.String()
}
