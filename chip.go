package rif

import (
	"repro/internal/chip"
	"repro/internal/ldpc"
)

// This file re-exports the functional chip model: a RiF-enabled flash
// die that stores real bits and runs the real ODEAR machinery, the
// counterpart of the paper's prototype chip.

// ChipConfig assembles a functional RiF-enabled chip.
type ChipConfig = chip.Config

// DefaultChipConfig returns a small ODEAR-enabled chip with the
// paper's 4x36 QC-LDPC block shape.
func DefaultChipConfig() ChipConfig { return chip.DefaultConfig() }

// Chip is a functional flash die: Program stores scrambled, encoded,
// rearranged codewords; Read injects condition-dependent raw bit
// errors and runs the on-die early-retry engine.
type Chip = chip.Chip

// NewChip builds a functional chip.
func NewChip(cfg ChipConfig) (*Chip, error) { return chip.New(cfg) }

// ChipController is the off-chip half: layout restore, LDPC decode,
// descramble, and the conventional retry fallback.
type ChipController = chip.Controller

// NewChipController pairs a controller with a chip's code.
func NewChipController(code *ldpc.Code) *ChipController { return chip.NewController(code) }

// PageAddr locates a page on a functional chip.
type PageAddr = chip.PageAddr

// ChipCondition is the operating state of a functional-chip read.
type ChipCondition = chip.Condition

// PageReadStats summarizes one end-to-end functional page read.
type PageReadStats = chip.PageReadStats

// NewQCLDPC constructs a QC-LDPC code with r block rows, c block
// columns and circulant size t (the paper's code is 4, 36, 1024).
func NewQCLDPC(r, c, t int, seed uint64) *ldpc.Code {
	return ldpc.NewCode(r, c, t, seed)
}
