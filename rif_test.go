package rif_test

import (
	"testing"

	rif "repro"
)

func fastParams() rif.RunParams {
	p := rif.DefaultRunParams()
	p.Requests = 200
	return p
}

func TestPublicSchemes(t *testing.T) {
	schemes := rif.AllSchemes()
	if len(schemes) != 7 {
		t.Fatalf("%d schemes", len(schemes))
	}
	if rif.RiFSSD.String() != "RiFSSD" || rif.SENC.String() != "SENC" {
		t.Fatal("scheme names wrong through the public API")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(rif.Workloads()) != 8 || len(rif.WorkloadNames()) != 8 {
		t.Fatal("Table II incomplete")
	}
	spec, err := rif.WorkloadByName("Sys0")
	if err != nil || spec.ReadRatio != 0.70 {
		t.Fatalf("Sys0 lookup: %+v %v", spec, err)
	}
	if _, err := rif.WorkloadByName("bogus"); err == nil {
		t.Fatal("bogus workload accepted")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	cfg := rif.DefaultConfig(rif.RiFSSD, 1000)
	cfg.Geometry.BlocksPerPlane = 128
	cfg.Geometry.PagesPerBlock = 64
	spec, _ := rif.WorkloadByName("Ali121")
	spec.FootprintPages = 1 << 15
	w, err := rif.NewWorkload(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := rif.New(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dev.Run(150)
	if err != nil {
		t.Fatal(err)
	}
	if m.RequestsCompleted != 150 || m.Bandwidth() <= 0 {
		t.Fatalf("bad metrics %v", m)
	}
}

func TestPublicRunHelper(t *testing.T) {
	m, err := rif.Run(fastParams(), rif.SSDOne, "Sys1", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if m.RetryRate() == 0 {
		t.Fatal("no retries at 2K on Sys1")
	}
}

func TestPublicCompareSchemes(t *testing.T) {
	tbl, err := rif.CompareSchemes(fastParams(),
		[]rif.Scheme{rif.SENC, rif.RiFSSD}, []string{"Ali124"}, []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.GeoMeanGain(rif.RiFSSD, rif.SENC, 2000) <= 0 {
		t.Fatal("RiF not ahead of SENC at 2K")
	}
}

func TestPublicCodeStudies(t *testing.T) {
	p := rif.DefaultCodeParams()
	p.Circulant = 128
	p.Samples = 30
	cap := rif.LDPCCapability(p, []float64{0.003, 0.012})
	if len(cap) != 2 || cap[0].FailureProb >= cap[1].FailureProb {
		t.Fatalf("capability curve wrong: %+v", cap)
	}
	pts, rhoFull, rhoPruned := rif.SyndromeCorrelation(p, []float64{0.004, 0.012})
	if len(pts) != 2 || rhoFull <= rhoPruned {
		t.Fatalf("correlation wrong: %v %d %d", pts, rhoFull, rhoPruned)
	}
	acc := rif.RPAccuracy(p, []float64{0.02}, true)
	if rif.MeanAccuracyAbove(acc, 0.0085) < 0.8 {
		t.Fatalf("accuracy at high RBER: %+v", acc)
	}
}

func TestPublicRetentionStudy(t *testing.T) {
	cells := rif.RetentionStudy(40, []int{0, 1000})
	if len(cells) == 0 {
		t.Fatal("no retention cells")
	}
}

func TestPublicTimelines(t *testing.T) {
	res, err := rif.Timelines(0)
	if err != nil || len(res) != 3 {
		t.Fatalf("timelines: %v %v", res, err)
	}
}

func TestPublicOverheadStudy(t *testing.T) {
	o, err := rif.OverheadStudy(fastParams())
	if err != nil {
		t.Fatal(err)
	}
	if o.AreaMM2 != 0.012 {
		t.Fatal("area constant wrong")
	}
}

func TestPublicUsageAndLatencyStudies(t *testing.T) {
	p := fastParams()
	cells, err := rif.ChannelUsageStudy(p, []rif.Scheme{rif.RiFSSD})
	if err != nil || len(cells) != 6 { // 2 workloads x 3 P/E
		t.Fatalf("usage: %d cells, %v", len(cells), err)
	}
	curves, err := rif.LatencyStudy(p, []rif.Scheme{rif.RiFSSD})
	if err != nil || len(curves) != 3 {
		t.Fatalf("latency: %d curves, %v", len(curves), err)
	}
	for _, c := range curves {
		if c.P9999 < c.P99 || c.P99 < c.P50 {
			t.Fatalf("percentiles inverted: %+v", c)
		}
	}
}
